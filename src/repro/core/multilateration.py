"""Multilateration localization (Section 4.1).

Estimates a node's position from distance measurements to at least
three non-collinear *anchors* by least-squares error minimization::

    argmin_(x, y)  sum_a  w(c_a) * ( sqrt((x - x_a)^2 + (y - y_a)^2) - d_a )^2

The paper minimizes with gradient descent and observes its
vulnerability: nodes "victims of the gradient descent falling into a
local minimum" (Figure 16).  Both the paper's gradient-descent solver
and a Levenberg-Marquardt cross-check solver are provided; the
intersection consistency check of Section 4.1.2 can pre-filter anchors
with inconsistent range circles.

Network-level drivers localize every non-anchor that has enough anchor
measurements, with an optional *progressive* mode in which localized
nodes are promoted to anchors for the remaining nodes (Section 4.1.1's
proposed modification).  By default :func:`localize_network` solves all
of a round's nodes in one stacked masked-array descent through
:mod:`repro.engine.batch`; the per-node seed implementation remains
available as the ``solver="scalar"`` reference path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy.optimize import least_squares

from .._validation import as_positions, check_positive, ensure_rng
from ..errors import InsufficientDataError, ValidationError
from .geometry import all_pairs_circle_intersections, is_collinear
from .measurements import EdgeList, MeasurementSet

__all__ = [
    "MultilaterationResult",
    "intersection_consistency_filter",
    "multilaterate",
    "NetworkLocalization",
    "localize_network",
]


@dataclass(frozen=True)
class MultilaterationResult:
    """Result of localizing one node.

    Attributes
    ----------
    position : ndarray of shape (2,)
        Estimated coordinates.
    residual : float
        Final value of the weighted least-squares objective.
    anchors_used : ndarray
        Indices (into the caller's anchor arrays) that survived the
        consistency filter and contributed to the fit.
    """

    position: np.ndarray
    residual: float
    anchors_used: np.ndarray


def intersection_consistency_filter(
    anchor_positions,
    distances,
    *,
    cluster_radius_m: float = 1.0,
) -> np.ndarray:
    """Indices of anchors passing the intersection consistency check.

    Section 4.1.2: compute the intersection points of all pairs of range
    circles; anchors whose circles produce *no* intersection point close
    to an intersection point of some other circle pair are dropped —
    they are either erroneous or dangerously collinear with the node.

    Anchors whose circle intersects no other circle at all are dropped
    too.  If fewer than three anchors survive, the original full set is
    returned (the check must not destroy solvability; the paper keeps
    suspicious data "due to the scarcity of available data").
    """
    anchors = as_positions(anchor_positions, "anchor_positions")
    dists = np.asarray(distances, dtype=float)
    if dists.shape != (anchors.shape[0],):
        raise ValidationError("distances must have one entry per anchor")
    check_positive(cluster_radius_m, "cluster_radius_m")
    n = anchors.shape[0]
    if n < 3:
        return np.arange(n)
    points, owners = all_pairs_circle_intersections(anchors, dists)
    if points.shape[0] == 0:
        return np.arange(n)

    consistent: Set[int] = set()
    for idx in range(points.shape[0]):
        p = points[idx]
        pair = set(owners[idx])
        for other in range(points.shape[0]):
            if other == idx:
                continue
            # Only points produced by a *different* circle pair vouch
            # for this one (two points of the same pair are trivially
            # related).
            if set(owners[other]) == pair:
                continue
            if float(np.hypot(*(points[other] - p))) <= cluster_radius_m:
                consistent.update(pair)
                break
    if len(consistent) < 3:
        return np.arange(n)
    return np.asarray(sorted(consistent), dtype=np.int64)


def _objective_terms(position, anchors, dists, weights):
    diff = anchors - position
    ranges = np.hypot(diff[:, 0], diff[:, 1])
    return np.sqrt(weights) * (ranges - dists)


def _gradient_descent_solve(
    anchors: np.ndarray,
    dists: np.ndarray,
    weights: np.ndarray,
    initial: np.ndarray,
    *,
    step_size: float = 0.1,
    max_iterations: int = 2000,
    tolerance: float = 1e-9,
) -> Tuple[np.ndarray, float]:
    """The paper's gradient-descent minimizer with adaptive step size.

    Deliberately susceptible to the same local minima the paper reports;
    reproducing Figure 16 depends on *not* using a smarter solver.
    """
    position = initial.astype(float).copy()

    def objective(pos):
        r = _objective_terms(pos, anchors, dists, weights)
        return float(np.dot(r, r))

    current = objective(position)
    alpha = step_size
    for _ in range(max_iterations):
        diff = position - anchors
        ranges = np.hypot(diff[:, 0], diff[:, 1])
        ranges = np.maximum(ranges, 1e-12)
        coeff = 2.0 * weights * (ranges - dists) / ranges
        grad = (coeff[:, None] * diff).sum(axis=0)
        gnorm = float(np.hypot(grad[0], grad[1]))
        if gnorm < tolerance:
            break
        candidate = position - alpha * grad
        value = objective(candidate)
        if value < current:
            position = candidate
            current = value
            alpha *= 1.1
        else:
            alpha *= 0.5
            if alpha < 1e-12:
                break
    return position, current


def multilaterate(
    anchor_positions,
    distances,
    *,
    weights=None,
    initial=None,
    consistency_check: bool = True,
    cluster_radius_m: float = 1.0,
    solver: str = "gradient",
    min_anchors: int = 3,
) -> MultilaterationResult:
    """Localize one node from anchor distances.

    Parameters
    ----------
    anchor_positions : array-like of shape (k, 2)
        Known anchor coordinates.
    distances : array-like of shape (k,)
        Measured distances to each anchor.
    weights : array-like of shape (k,), optional
        Confidence weights ``w(c_a)``; the paper's experiments used a
        constant 1 (the default).
    initial : array-like of shape (2,), optional
        Starting point for the minimization; defaults to the weighted
        anchor centroid.
    consistency_check : bool
        Apply the intersection consistency filter first.
    solver : {"gradient", "scalar", "lm"}
        ``"gradient"`` is the paper's gradient descent (default);
        ``"scalar"`` is accepted as an alias for it (matching the
        network-level solver names, where "gradient" selects the
        batched engine and "scalar" the per-node reference —
        a single-node call is the scalar reference by construction);
        ``"lm"`` uses scipy's Levenberg-Marquardt for cross-checking.
    min_anchors : int
        Minimum surviving anchors required (3 for an unambiguous planar
        fix).

    Raises
    ------
    InsufficientDataError
        Fewer than *min_anchors* anchors, or all anchors collinear.
    """
    anchors = as_positions(anchor_positions, "anchor_positions")
    dists = np.asarray(distances, dtype=float)
    if dists.shape != (anchors.shape[0],):
        raise ValidationError("distances must have one entry per anchor")
    if np.any(dists < 0):
        raise ValidationError("distances must be non-negative")
    if weights is None:
        w = np.ones(anchors.shape[0])
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != (anchors.shape[0],) or np.any(w < 0):
            raise ValidationError("weights must be non-negative, one per anchor")
    if min_anchors < 3:
        raise ValidationError("min_anchors must be >= 3 for planar localization")
    if anchors.shape[0] < min_anchors:
        raise InsufficientDataError(
            f"need at least {min_anchors} anchors; got {anchors.shape[0]}"
        )

    used = np.arange(anchors.shape[0])
    if consistency_check:
        used = intersection_consistency_filter(
            anchors, dists, cluster_radius_m=cluster_radius_m
        )
        if used.shape[0] < min_anchors:
            used = np.arange(anchors.shape[0])
    sel_anchors = anchors[used]
    sel_dists = dists[used]
    sel_weights = w[used]

    if is_collinear(sel_anchors):
        raise InsufficientDataError(
            "anchors are collinear; planar position is ambiguous"
        )

    if initial is None:
        total = sel_weights.sum()
        start = (
            (sel_weights[:, None] * sel_anchors).sum(axis=0) / total
            if total > 0
            else sel_anchors.mean(axis=0)
        )
    else:
        start = np.asarray(initial, dtype=float)
        if start.shape != (2,):
            raise ValidationError("initial must have shape (2,)")

    if solver in ("gradient", "scalar"):
        position, residual = _gradient_descent_solve(
            sel_anchors, sel_dists, sel_weights, start
        )
    elif solver == "lm":
        result = least_squares(
            _objective_terms,
            x0=start,
            args=(sel_anchors, sel_dists, sel_weights),
            method="lm",
        )
        position = result.x
        residual = float(2.0 * result.cost)
    else:
        raise ValidationError(f"unknown solver {solver!r}")

    return MultilaterationResult(
        position=position,
        residual=residual,
        anchors_used=used,
    )


@dataclass
class NetworkLocalization:
    """Result of network-wide localization.

    Attributes
    ----------
    positions : ndarray of shape (n, 2)
        Estimated coordinates; rows of unlocalized nodes are nan.
        Anchor rows carry the anchor's known position.
    localized : ndarray of bool, shape (n,)
        True for nodes with an estimate (anchors are True).
    is_anchor : ndarray of bool, shape (n,)
        The anchor mask the run started from.
    anchors_per_node : ndarray of shape (n,)
        Number of anchors each non-anchor had distance measurements to
        at the time it was (or failed to be) localized.  The paper
        reports this average (1.47 for Figure 14, 3.84 for Figure 16).
    """

    positions: np.ndarray
    localized: np.ndarray
    is_anchor: np.ndarray
    anchors_per_node: np.ndarray

    @property
    def average_anchors_per_node(self) -> float:
        """Mean anchor count over non-anchor nodes."""
        non_anchor = ~self.is_anchor
        if not np.any(non_anchor):
            return 0.0
        return float(self.anchors_per_node[non_anchor].mean())


def localize_network(
    measurements,
    anchor_positions: Dict[int, Sequence[float]],
    n_nodes: int,
    *,
    progressive: bool = False,
    consistency_check: bool = True,
    cluster_radius_m: float = 1.0,
    solver: str = "gradient",
    min_anchors: int = 3,
    max_progressive_rounds: int = 10,
) -> NetworkLocalization:
    """Localize all non-anchor nodes from a measurement set.

    Parameters
    ----------
    measurements : MeasurementSet or EdgeList
        Range measurements (reduced to one estimate per undirected pair
        internally).
    anchor_positions : dict
        Node id -> known (x, y) for anchors.
    n_nodes : int
        Total node count; ids run 0..n_nodes-1.
    progressive : bool
        Promote localized nodes to anchors and iterate (Section 4.1.1's
        progressive localization).  The paper's reported experiments
        keep this off.
    solver : {"gradient", "scalar", "lm"}
        ``"gradient"`` (default) solves every node of a refinement
        round in one batched masked-array step through
        :mod:`repro.engine.batch`; ``"scalar"`` is the per-node
        reference path (the seed implementation, kept for the
        batched/scalar parity contract); ``"lm"`` solves per node with
        scipy's Levenberg-Marquardt.  In progressive mode the batched
        engine promotes a whole round's solutions at once (Jacobi
        sweeps), while the scalar path promotes within the round
        (Gauss-Seidel); a promotion chain therefore needs one round per
        link under the engine, so with a tight *max_progressive_rounds*
        budget (or near-degenerate geometry, where slightly different
        intermediate estimates flip a collinearity or consistency
        verdict) the two paths' coverage can differ at the margin.
    """
    if isinstance(measurements, MeasurementSet):
        edges = measurements.to_edge_list()
    elif isinstance(measurements, EdgeList):
        edges = measurements
    else:
        raise ValidationError(
            "measurements must be a MeasurementSet or EdgeList; "
            f"got {type(measurements)!r}"
        )
    if n_nodes < 1:
        raise ValidationError("n_nodes must be >= 1")
    if solver not in ("gradient", "scalar", "lm"):
        raise ValidationError(f"unknown solver {solver!r}")
    if min_anchors < 3:
        raise ValidationError("min_anchors must be >= 3 for planar localization")
    for node_id in anchor_positions:
        if not 0 <= int(node_id) < n_nodes:
            raise ValidationError(f"anchor id {node_id} outside [0, {n_nodes})")

    # Distance lookup per node: node -> list of (partner, distance, weight)
    adjacency: Dict[int, List[Tuple[int, float, float]]] = {i: [] for i in range(n_nodes)}
    for (i, j), d, w in zip(edges.pairs, edges.distances, edges.weights):
        adjacency[int(i)].append((int(j), float(d), float(w)))
        adjacency[int(j)].append((int(i), float(d), float(w)))

    positions = np.full((n_nodes, 2), np.nan)
    known: Dict[int, np.ndarray] = {}
    is_anchor = np.zeros(n_nodes, dtype=bool)
    for node_id, pos in anchor_positions.items():
        arr = np.asarray(pos, dtype=float)
        if arr.shape != (2,):
            raise ValidationError("anchor positions must be (x, y) pairs")
        known[int(node_id)] = arr
        positions[int(node_id)] = arr
        is_anchor[int(node_id)] = True

    anchors_per_node = np.zeros(n_nodes)
    rounds = max_progressive_rounds if progressive else 1
    for _ in range(rounds):
        progress = False
        if solver == "gradient":
            # Batched engine path: gather every pending node's anchor
            # problem, solve the whole refinement round in one stacked
            # masked-array descent, then promote (progressive) en bloc.
            from ..engine.batch import solve_multilateration_batch

            prob_nodes: List[int] = []
            anchor_sets: List[np.ndarray] = []
            dist_sets: List[np.ndarray] = []
            weight_sets: List[np.ndarray] = []
            for node in range(n_nodes):
                if node in known:
                    continue
                anchor_links = [
                    (partner, d, w)
                    for partner, d, w in adjacency[node]
                    if partner in known
                ]
                anchors_per_node[node] = len(anchor_links)
                if len(anchor_links) < min_anchors:
                    continue
                prob_nodes.append(node)
                anchor_sets.append(np.asarray([known[p] for p, _, _ in anchor_links]))
                dist_sets.append(np.asarray([d for _, d, _ in anchor_links]))
                weight_sets.append(np.asarray([w for _, _, w in anchor_links]))
            if prob_nodes:
                solved_pos, solved, _ = solve_multilateration_batch(
                    anchor_sets,
                    dist_sets,
                    weight_sets,
                    min_anchors=min_anchors,
                    consistency_check=consistency_check,
                    cluster_radius_m=cluster_radius_m,
                )
                for node, pos, ok in zip(prob_nodes, solved_pos, solved):
                    if not ok:
                        continue
                    positions[node] = pos
                    if progressive:
                        known[node] = pos
                        progress = True
        else:
            per_node_solver = "gradient" if solver == "scalar" else solver
            for node in range(n_nodes):
                if node in known:
                    continue
                anchor_links = [
                    (partner, d, w)
                    for partner, d, w in adjacency[node]
                    if partner in known
                ]
                anchors_per_node[node] = len(anchor_links)
                if len(anchor_links) < min_anchors:
                    continue
                anchor_xy = np.asarray([known[p] for p, _, _ in anchor_links])
                dists = np.asarray([d for _, d, _ in anchor_links])
                weights = np.asarray([w for _, _, w in anchor_links])
                try:
                    result = multilaterate(
                        anchor_xy,
                        dists,
                        weights=weights,
                        consistency_check=consistency_check,
                        cluster_radius_m=cluster_radius_m,
                        solver=per_node_solver,
                        min_anchors=min_anchors,
                    )
                except InsufficientDataError:
                    continue
                positions[node] = result.position
                if progressive:
                    known[node] = result.position
                    progress = True
        if not progressive or not progress:
            break
        # Re-count anchors for still-unlocalized nodes next round.

    localized = np.all(np.isfinite(positions), axis=1)
    if progressive:
        # Final per-node anchor counts reflect the end state.
        for node in range(n_nodes):
            if not is_anchor[node]:
                anchors_per_node[node] = sum(
                    1 for partner, _, _ in adjacency[node] if localized[partner]
                )
    return NetworkLocalization(
        positions=positions,
        localized=localized,
        is_anchor=is_anchor,
        anchors_per_node=anchors_per_node,
    )
