"""Core localization algorithms: the paper's primary contribution.

Exports the multilateration suite (Section 4.1), centralized LSS with
soft constraints (Section 4.2), the distributed LSS pipeline (Section
4.3), the classical-MDS baselines, and the shared measurement/geometry/
evaluation utilities.
"""

from .distributed import (
    DistributedConfig,
    DistributedResult,
    LocalMap,
    build_local_maps,
    build_transforms,
    distributed_localize,
)
from .evaluation import (
    LocalizationReport,
    align_to_reference,
    error_histogram,
    evaluate_localization,
    localization_errors,
    trimmed_mean_error,
)
from .geometry import (
    all_pairs_circle_intersections,
    apply_transform,
    centroid,
    circle_intersections,
    compose_transforms,
    decompose_transform,
    distances_for_pairs,
    euclidean,
    invert_transform,
    is_collinear,
    pairwise_distances,
    rigid_transform_matrix,
    triangle_inequality_holds,
)
from .lss import (
    LssConfig,
    LssResult,
    lss_error,
    lss_gradient,
    lss_localize,
    lss_localize_robust,
)
from .mds import classical_mds, complete_distances, mds_map
from .measurements import EdgeList, MeasurementSet, RangeMeasurement
from .aps import dv_distance_localize, dv_hop_localize
from .protocol import ProtocolResult, run_distributed_protocol
from .multilateration import (
    MultilaterationResult,
    NetworkLocalization,
    intersection_consistency_filter,
    localize_network,
    multilaterate,
)
from .transforms import (
    TransformEstimate,
    estimate_transform,
    estimate_transform_closed_form,
    estimate_transform_minimize,
    transform_residual,
)

__all__ = [
    # measurements
    "RangeMeasurement",
    "EdgeList",
    "MeasurementSet",
    # geometry
    "euclidean",
    "pairwise_distances",
    "distances_for_pairs",
    "circle_intersections",
    "all_pairs_circle_intersections",
    "rigid_transform_matrix",
    "apply_transform",
    "invert_transform",
    "compose_transforms",
    "decompose_transform",
    "triangle_inequality_holds",
    "centroid",
    "is_collinear",
    # transforms
    "TransformEstimate",
    "transform_residual",
    "estimate_transform",
    "estimate_transform_closed_form",
    "estimate_transform_minimize",
    # evaluation
    "LocalizationReport",
    "align_to_reference",
    "localization_errors",
    "evaluate_localization",
    "error_histogram",
    "trimmed_mean_error",
    # multilateration
    "MultilaterationResult",
    "NetworkLocalization",
    "intersection_consistency_filter",
    "multilaterate",
    "localize_network",
    # LSS
    "LssConfig",
    "LssResult",
    "lss_error",
    "lss_gradient",
    "lss_localize",
    "lss_localize_robust",
    # MDS baselines
    "classical_mds",
    "complete_distances",
    "mds_map",
    # distributed
    "DistributedConfig",
    "DistributedResult",
    "LocalMap",
    "build_local_maps",
    "build_transforms",
    "distributed_localize",
    # protocol
    "ProtocolResult",
    "run_distributed_protocol",
    # APS baselines
    "dv_hop_localize",
    "dv_distance_localize",
]
