"""Range-measurement data model shared by ranging and localization.

The ranging service (Section 3) produces *directed* distance
measurements: node ``i`` chirps, node ``j`` detects, yielding an estimate
of ``d_ij`` at ``j``.  Several estimates may exist per ordered pair (the
paper makes multiple rounds and filters with median/mode), and the
bidirectional consistency check compares the ``(i, j)`` and ``(j, i)``
estimates.  Localization (Section 4) consumes an *undirected* edge list
``(pairs, distances, weights)``.

:class:`MeasurementSet` holds the directed multi-measurements and
produces the undirected view; it is the interchange type across the
library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from .._validation import check_non_negative
from ..errors import ValidationError

__all__ = ["RangeMeasurement", "EdgeList", "MeasurementSet"]


@dataclass(frozen=True)
class RangeMeasurement:
    """One directed distance estimate.

    Attributes
    ----------
    source : int
        Node that emitted the chirp.
    receiver : int
        Node that detected the chirp and computed the distance.
    distance : float
        Estimated distance in meters.
    true_distance : float or None
        Ground-truth distance when known (simulation only); ``None`` for
        field-style data.  Used for error analyses, never by algorithms.
    round_index : int
        Which measurement round produced this estimate.
    """

    source: int
    receiver: int
    distance: float
    true_distance: Optional[float] = None
    round_index: int = 0

    def __post_init__(self):
        if self.source == self.receiver:
            raise ValidationError("source and receiver must differ")
        if self.source < 0 or self.receiver < 0:
            raise ValidationError("node ids must be non-negative")
        check_non_negative(self.distance, "distance")

    @property
    def error(self) -> Optional[float]:
        """Signed ranging error (estimate minus truth), if truth is known."""
        if self.true_distance is None:
            return None
        return self.distance - self.true_distance


@dataclass(frozen=True)
class EdgeList:
    """Undirected measurement view consumed by localization algorithms."""

    pairs: np.ndarray  # (m, 2) int64, i < j
    distances: np.ndarray  # (m,)
    weights: np.ndarray  # (m,)

    def __post_init__(self):
        if self.pairs.shape[0] != self.distances.shape[0] or self.pairs.shape[0] != self.weights.shape[0]:
            raise ValidationError("pairs, distances and weights must have equal length")

    def __len__(self) -> int:
        return int(self.pairs.shape[0])


class MeasurementSet:
    """A mutable collection of directed range measurements.

    Supports the reduction and filtering pipeline of Section 3.5
    (statistical filtering, bidirectional and triangle consistency
    checks live in :mod:`repro.ranging`, operating on this type) and
    exports the undirected edge list for localization.
    """

    def __init__(self, measurements: Iterable[RangeMeasurement] = ()) -> None:
        self._directed: Dict[Tuple[int, int], List[RangeMeasurement]] = {}
        for m in measurements:
            self.add(m)

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------

    def add(self, measurement: RangeMeasurement) -> None:
        """Add one directed measurement."""
        key = (measurement.source, measurement.receiver)
        self._directed.setdefault(key, []).append(measurement)

    def add_distance(
        self,
        source: int,
        receiver: int,
        distance: float,
        *,
        true_distance: Optional[float] = None,
        round_index: int = 0,
    ) -> None:
        """Convenience wrapper building a :class:`RangeMeasurement`."""
        self.add(
            RangeMeasurement(
                source=source,
                receiver=receiver,
                distance=distance,
                true_distance=true_distance,
                round_index=round_index,
            )
        )

    def merge(self, other: "MeasurementSet") -> "MeasurementSet":
        """Return a new set containing measurements from both sets."""
        merged = MeasurementSet(self)
        for m in other:
            merged.add(m)
        return merged

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[RangeMeasurement]:
        for measurements in self._directed.values():
            yield from measurements

    def __len__(self) -> int:
        return sum(len(v) for v in self._directed.values())

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        return tuple(pair) in self._directed

    @property
    def directed_pairs(self) -> List[Tuple[int, int]]:
        """Ordered (source, receiver) pairs with at least one estimate."""
        return sorted(self._directed)

    @property
    def undirected_pairs(self) -> List[Tuple[int, int]]:
        """Unordered node pairs (i < j) with at least one estimate in
        either direction."""
        seen: Set[Tuple[int, int]] = set()
        for (i, j) in self._directed:
            seen.add((min(i, j), max(i, j)))
        return sorted(seen)

    @property
    def node_ids(self) -> List[int]:
        """All node ids appearing in any measurement, sorted."""
        ids: Set[int] = set()
        for (i, j) in self._directed:
            ids.add(i)
            ids.add(j)
        return sorted(ids)

    def get(self, source: int, receiver: int) -> List[RangeMeasurement]:
        """Directed measurements for an ordered pair ([] when absent)."""
        return list(self._directed.get((source, receiver), []))

    def distances(self, source: int, receiver: int) -> np.ndarray:
        """Distance estimates for an ordered pair as an array."""
        return np.array([m.distance for m in self.get(source, receiver)])

    def has_bidirectional(self, i: int, j: int) -> bool:
        """True when estimates exist in both directions for the pair."""
        return (i, j) in self._directed and (j, i) in self._directed

    def neighbors(self, node: int) -> List[int]:
        """Nodes sharing an undirected measurement with *node*."""
        out: Set[int] = set()
        for (i, j) in self._directed:
            if i == node:
                out.add(j)
            elif j == node:
                out.add(i)
        return sorted(out)

    def degree_histogram(self) -> Dict[int, int]:
        """Map node id -> number of undirected measurement partners."""
        return {node: len(self.neighbors(node)) for node in self.node_ids}

    # ------------------------------------------------------------------
    # Reduction / export
    # ------------------------------------------------------------------

    def reduce(self, statistic: str = "median") -> "MeasurementSet":
        """Collapse multi-round estimates per directed pair to one value.

        ``statistic`` is ``"median"``, ``"mode"`` or ``"mean"``; the
        paper uses the median for few measurements and the mode when
        many are available (Section 3.5, Statistical Filtering).  The
        mode here is the paper's coarse-bin variant: estimates are
        quantized to 0.5 m bins and the densest bin's member mean wins.
        """
        reduced = MeasurementSet()
        for (i, j), measurements in self._directed.items():
            values = np.array([m.distance for m in measurements])
            truths = [m.true_distance for m in measurements]
            truth = truths[0] if all(t == truths[0] for t in truths) else None
            if statistic == "median":
                value = float(np.median(values))
            elif statistic == "mean":
                value = float(values.mean())
            elif statistic == "mode":
                value = _binned_mode(values)
            else:
                raise ValidationError(f"unknown statistic {statistic!r}")
            reduced.add_distance(i, j, value, true_distance=truth)
        return reduced

    def symmetrized(self) -> "MeasurementSet":
        """Average the two directions of bidirectional pairs.

        Pairs with only one direction keep their single estimate.  The
        result contains exactly one directed measurement per undirected
        pair, stored as (min, max).
        """
        single = self.reduce("median")
        out = MeasurementSet()
        for (i, j) in single.undirected_pairs:
            forward = single.distances(i, j)
            backward = single.distances(j, i)
            values = np.concatenate([forward, backward])
            truth = None
            for m in single.get(i, j) + single.get(j, i):
                if m.true_distance is not None:
                    truth = m.true_distance
                    break
            out.add_distance(i, j, float(values.mean()), true_distance=truth)
        return out

    def to_edge_list(
        self,
        *,
        weight_fn=None,
    ) -> EdgeList:
        """Export the undirected edge list for localization.

        Multi-round and bidirectional estimates are first collapsed with
        :meth:`symmetrized`.  *weight_fn*, if given, maps an undirected
        pair's collapsed distance to a weight; the default assigns the
        paper's constant weight 1.
        """
        sym = self.symmetrized()
        pairs = sym.undirected_pairs
        if not pairs:
            return EdgeList(
                pairs=np.zeros((0, 2), dtype=np.int64),
                distances=np.zeros(0),
                weights=np.zeros(0),
            )
        arr_pairs = np.asarray(pairs, dtype=np.int64)
        dists = np.array([sym.distances(i, j)[0] for (i, j) in pairs])
        if weight_fn is None:
            weights = np.ones(len(pairs))
        else:
            weights = np.array([float(weight_fn(d)) for d in dists])
        return EdgeList(pairs=arr_pairs, distances=dists, weights=weights)

    def filter(self, predicate) -> "MeasurementSet":
        """New set keeping measurements for which *predicate(m)* is true."""
        return MeasurementSet(m for m in self if predicate(m))

    def restrict_to_nodes(self, nodes: Iterable[int]) -> "MeasurementSet":
        """New set keeping measurements whose endpoints are both in *nodes*."""
        allowed = set(int(n) for n in nodes)
        return self.filter(lambda m: m.source in allowed and m.receiver in allowed)

    def signed_errors(self) -> np.ndarray:
        """Signed errors for all measurements with known ground truth."""
        errs = [m.error for m in self if m.error is not None]
        return np.asarray(errs, dtype=float)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edge_arrays(
        cls,
        pairs,
        distances,
        *,
        true_distances=None,
    ) -> "MeasurementSet":
        """Build a set from parallel arrays of pairs and distances."""
        pairs = np.asarray(pairs, dtype=np.int64)
        distances = np.asarray(distances, dtype=float)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValidationError(f"pairs must have shape (m, 2); got {pairs.shape}")
        if distances.shape != (pairs.shape[0],):
            raise ValidationError("distances length must match pairs")
        if true_distances is not None:
            true_distances = np.asarray(true_distances, dtype=float)
            if true_distances.shape != (pairs.shape[0],):
                raise ValidationError("true_distances length must match pairs")
        out = cls()
        for k in range(pairs.shape[0]):
            truth = None if true_distances is None else float(true_distances[k])
            out.add_distance(
                int(pairs[k, 0]), int(pairs[k, 1]), float(distances[k]), true_distance=truth
            )
        return out


def _binned_mode(values: np.ndarray, bin_width: float = 0.5) -> float:
    """Mode of *values* by densest 0.5 m bin, as used by the paper's
    statistical filter when many estimates are available."""
    if values.size == 1:
        return float(values[0])
    bins = np.floor(values / bin_width).astype(np.int64)
    unique, counts = np.unique(bins, return_counts=True)
    best_bin = unique[np.argmax(counts)]
    members = values[bins == best_bin]
    return float(members.mean())
