"""Classical multidimensional scaling and MDS-MAP baselines.

Related-work comparators for the paper's LSS scheme (Section 2 cites
Shang & Ruml's MDS-based localization [18, 19]):

* :func:`classical_mds` — the textbook procedure: double-center the
  squared distance matrix, eigendecompose, take the top components.
  Requires the *complete* distance matrix — "one problem with this
  centralized approach", and the motivation for LSS.
* :func:`complete_distances` — fills the missing entries with
  shortest-path distances over the measurement graph.
* :func:`mds_map` — the MDS-MAP baseline: shortest-path completion +
  classical MDS, producing relative coordinates from sparse data.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from .._validation import as_finite_array
from ..errors import GraphDisconnectedError, InsufficientDataError, ValidationError
from .measurements import EdgeList, MeasurementSet

__all__ = ["classical_mds", "complete_distances", "mds_map"]


def classical_mds(distance_matrix, n_components: int = 2) -> np.ndarray:
    """Classical (Torgerson) MDS.

    Parameters
    ----------
    distance_matrix : array-like of shape (n, n)
        Complete symmetric distance matrix.
    n_components : int
        Output dimensionality (2 for planar localization).

    Returns
    -------
    ndarray of shape (n, n_components)
        Relative coordinates (centered at the origin; arbitrary
        rotation/reflection).
    """
    d = as_finite_array(distance_matrix, "distance_matrix", ndim=2)
    n = d.shape[0]
    if d.shape != (n, n):
        raise ValidationError("distance_matrix must be square")
    if not np.allclose(d, d.T, atol=1e-8):
        raise ValidationError("distance_matrix must be symmetric")
    if np.any(np.diag(d) != 0):
        raise ValidationError("distance_matrix diagonal must be zero")
    if not 1 <= n_components <= n:
        raise ValidationError("n_components must be in [1, n]")
    # Double centering: B = -1/2 J D^2 J
    sq = d**2
    centering = np.eye(n) - np.ones((n, n)) / n
    b = -0.5 * centering @ sq @ centering
    eigenvalues, eigenvectors = np.linalg.eigh(b)
    order = np.argsort(eigenvalues)[::-1][:n_components]
    top_values = np.maximum(eigenvalues[order], 0.0)
    return eigenvectors[:, order] * np.sqrt(top_values)


def complete_distances(measurements, n_nodes: int) -> np.ndarray:
    """Complete a sparse measurement set via graph shortest paths.

    Raises :class:`GraphDisconnectedError` when the measurement graph
    does not connect all *n_nodes* nodes (shortest-path completion is
    then impossible for some pairs).
    """
    if isinstance(measurements, MeasurementSet):
        edges = measurements.to_edge_list()
    elif isinstance(measurements, EdgeList):
        edges = measurements
    else:
        raise ValidationError(
            f"measurements must be a MeasurementSet or EdgeList; got {type(measurements)!r}"
        )
    if len(edges) == 0:
        raise InsufficientDataError("no measurements to complete")
    if n_nodes < 2:
        raise ValidationError("n_nodes must be >= 2")
    rows = np.concatenate([edges.pairs[:, 0], edges.pairs[:, 1]])
    cols = np.concatenate([edges.pairs[:, 1], edges.pairs[:, 0]])
    vals = np.concatenate([edges.distances, edges.distances])
    graph = csr_matrix((vals, (rows, cols)), shape=(n_nodes, n_nodes))
    full = shortest_path(graph, method="D", directed=False)
    if np.any(np.isinf(full)):
        raise GraphDisconnectedError(
            "measurement graph is disconnected; cannot complete the "
            "distance matrix by shortest paths"
        )
    return full


def mds_map(measurements, n_nodes: int, n_components: int = 2) -> np.ndarray:
    """MDS-MAP baseline: shortest-path completion then classical MDS.

    Returns relative coordinates of shape ``(n_nodes, n_components)``.
    """
    full = complete_distances(measurements, n_nodes)
    return classical_mds(full, n_components=n_components)
