"""Rigid-transform estimation between local coordinate systems.

Step 2 of the paper's distributed localization algorithm (Section 4.3.1)
must map one node's local relative coordinate system onto a neighbor's,
using the coordinates of their *shared* neighbors as correspondences.
The paper presents two estimators, both implemented here:

``estimate_transform_minimize``
    The "straightforward" 4-parameter minimization of the squared
    correspondence error over ``(theta, tx, ty)`` for each reflection
    factor ``f in {+1, -1}``, keeping the better of the two.  Accurate
    but, as the paper notes, too heavy for mote-class hardware.

``estimate_transform_closed_form``
    The paper's lightweight alternative: translate both point sets to
    their centers of mass, then solve for the rotation angle from the
    cross-covariances via ``(C_xu + C_yv) sin(theta) + (C_xv - C_yu)
    cos(theta) = 0``, trying both roots (theta, theta + pi) and both
    reflection factors, keeping the combination with least error.

Both return a :class:`TransformEstimate` carrying the homogeneous matrix
(the paper's row-vector convention), the residual error, and the chosen
reflection — so the alignment step can propagate quality information.

:func:`estimate_transforms_closed_form_batch` is the vectorized form of
the closed-form estimator: a whole refinement round's pairwise
transforms (one problem per neighboring-map pair and direction) are
stacked into padded ``(n_problems, max_shared, 2)`` correspondence
arrays with a validity mask and solved in one pass — the batched
map-stitching step of the distributed pipeline
(:func:`repro.core.distributed.build_transforms` with the default
``solver="batched"``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np
from scipy.optimize import minimize

from .._validation import as_positions
from ..errors import InsufficientDataError, ValidationError
from .geometry import apply_transform, rigid_transform_matrix

__all__ = [
    "TransformEstimate",
    "transform_residual",
    "estimate_transform_minimize",
    "estimate_transform_closed_form",
    "estimate_transforms_closed_form_batch",
    "estimate_transforms_minimize_batch",
    "estimate_transform",
]


@dataclass(frozen=True)
class TransformEstimate:
    """Result of estimating a rigid transform from correspondences.

    Attributes
    ----------
    matrix : ndarray of shape (3, 3)
        Homogeneous transform mapping source row-vectors to target.
    error : float
        Sum of squared residuals over the correspondences (the paper's
        ``E_f``).
    rmse : float
        Root-mean-square correspondence residual, in the same length
        unit as the inputs; convenient for thresholding.
    theta : float
        Rotation angle in radians.
    reflected : bool
        Whether the winning solution includes a reflection.
    n_correspondences : int
        Number of shared points used for the fit.
    """

    matrix: np.ndarray
    error: float
    rmse: float
    theta: float
    reflected: bool
    n_correspondences: int

    def apply(self, points) -> np.ndarray:
        """Map ``(n, 2)`` source-frame points into the target frame."""
        return apply_transform(points, self.matrix)


def transform_residual(source, target, matrix) -> float:
    """Sum of squared residuals of *matrix* over the correspondences."""
    src = as_positions(source, "source")
    tgt = as_positions(target, "target")
    mapped = apply_transform(src, matrix)
    return float(np.sum((mapped - tgt) ** 2))


def _validate_correspondences(source, target) -> Tuple[np.ndarray, np.ndarray]:
    src = as_positions(source, "source")
    tgt = as_positions(target, "target")
    if src.shape != tgt.shape:
        raise ValidationError(
            f"source and target must have matching shapes; got {src.shape} vs {tgt.shape}"
        )
    if src.shape[0] < 2:
        raise InsufficientDataError(
            "at least two shared points are required to estimate a rigid "
            f"transform; got {src.shape[0]}"
        )
    return src, tgt


def estimate_transform_minimize(source, target) -> TransformEstimate:
    """Estimate the transform by direct numerical minimization.

    Solves ``argmin_{theta, tx, ty} E_f`` separately for ``f = +1`` and
    ``f = -1`` (Section 4.3.1) and returns the solution with smaller
    error.  Uses Nelder-Mead seeded from the closed-form solution, which
    makes it robust without gradients.
    """
    src, tgt = _validate_correspondences(source, target)
    seed = estimate_transform_closed_form(src, tgt)

    best: Optional[TransformEstimate] = None
    for reflect in (False, True):
        # Seed each branch from the closed-form angle; translation seeds
        # come from the centroid offset under that angle.
        theta0 = seed.theta if reflect == seed.reflected else seed.theta + math.pi

        def objective(params, reflect=reflect):
            theta, tx, ty = params
            matrix = rigid_transform_matrix(theta, tx, ty, reflect)
            return transform_residual(src, tgt, matrix)

        rot0 = rigid_transform_matrix(theta0, 0.0, 0.0, reflect)
        mapped0 = apply_transform(src, rot0)
        t0 = tgt.mean(axis=0) - mapped0.mean(axis=0)
        result = minimize(
            objective,
            x0=np.array([theta0, t0[0], t0[1]]),
            method="Nelder-Mead",
            options={"xatol": 1e-10, "fatol": 1e-12, "maxiter": 2000},
        )
        theta, tx, ty = result.x
        matrix = rigid_transform_matrix(theta, tx, ty, reflect)
        error = transform_residual(src, tgt, matrix)
        candidate = TransformEstimate(
            matrix=matrix,
            error=error,
            rmse=math.sqrt(error / src.shape[0]),
            theta=float(theta),
            reflected=reflect,
            n_correspondences=src.shape[0],
        )
        if best is None or candidate.error < best.error:
            best = candidate
    assert best is not None
    return best


def estimate_transform_closed_form(source, target) -> TransformEstimate:
    """Estimate the transform with the paper's center-of-mass method.

    The translation is fixed as the offset between the centers of mass of
    the shared-neighbor sets; the rotation angle must satisfy::

        [C_xu + C_yv, C_xv - C_yu] . [sin(theta), cos(theta)]^T = 0

    Both roots (theta and theta + pi) and both reflection factors are
    evaluated and the least-error combination wins, exactly as described
    in Section 4.3.1.
    """
    src, tgt = _validate_correspondences(source, target)
    mu_src = src.mean(axis=0)
    mu_tgt = tgt.mean(axis=0)

    best: Optional[TransformEstimate] = None
    for reflect in (False, True):
        # Reflection (f = -1) flips the second row of the rotation block,
        # which for centered coordinates is equivalent to negating v and
        # solving for a pure rotation.
        u = src[:, 0] - mu_src[0]
        v = src[:, 1] - mu_src[1]
        if reflect:
            v = -v
        x = tgt[:, 0] - mu_tgt[0]
        y = tgt[:, 1] - mu_tgt[1]

        c_xu = float(np.mean(x * u))
        c_yv = float(np.mean(y * v))
        c_xv = float(np.mean(x * v))
        c_yu = float(np.mean(y * u))
        # Stationary condition of the correspondence error in the
        # row-vector convention used by this library:
        #   (C_xu + C_yv) sin(theta) + (C_yu - C_xv) cos(theta) = 0
        # (the paper states the column-vector form; the sign of the cosine
        # coefficient flips between the two conventions).
        theta_root = math.atan2(c_xv - c_yu, c_xu + c_yv)
        for theta in (theta_root, theta_root + math.pi):
            # Build: translate(-mu_src) . rot/reflect . translate(+mu_tgt)
            pre = np.array([[1, 0, 0], [0, 1, 0], [-mu_src[0], -mu_src[1], 1.0]])
            rot = rigid_transform_matrix(theta, 0.0, 0.0, reflect)
            post = np.array([[1, 0, 0], [0, 1, 0], [mu_tgt[0], mu_tgt[1], 1.0]])
            matrix = pre @ rot @ post
            error = transform_residual(src, tgt, matrix)
            candidate = TransformEstimate(
                matrix=matrix,
                error=error,
                rmse=math.sqrt(error / src.shape[0]),
                theta=float(theta % (2 * math.pi)),
                reflected=reflect,
                n_correspondences=src.shape[0],
            )
            if best is None or candidate.error < best.error:
                best = candidate
    assert best is not None
    return best


def _validate_transform_stacks(
    sources, targets, valid
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared validation for the batched estimators.

    Returns ``(src, tgt, valid, counts)`` with padding-safe dtypes.
    """
    src = np.asarray(sources, dtype=float)
    tgt = np.asarray(targets, dtype=float)
    if src.ndim != 3 or src.shape[-1] != 2 or src.shape != tgt.shape:
        raise ValidationError(
            f"sources and targets must share a (P, S, 2) shape; got "
            f"{src.shape} vs {tgt.shape}"
        )
    n_problems, max_shared = src.shape[:2]
    if valid is None:
        valid = np.ones((n_problems, max_shared), dtype=bool)
    valid = np.asarray(valid, dtype=bool)
    counts = valid.sum(axis=1)
    if np.any(counts < 2):
        raise InsufficientDataError(
            "every problem needs at least two shared points to estimate "
            "a rigid transform"
        )
    return src, tgt, valid, counts


def _compose_batch_results(
    best_rot: np.ndarray,
    best_theta: np.ndarray,
    best_error: np.ndarray,
    best_reflect: np.ndarray,
    mu_src: np.ndarray,
    mu_tgt: np.ndarray,
    counts: np.ndarray,
) -> list:
    """Compose homogeneous matrices + result objects from winner arrays."""
    n_problems = best_rot.shape[0]
    # translate(-mu_src) . rot . translate(+mu_tgt), composed directly.
    matrices = np.zeros((n_problems, 3, 3))
    matrices[:, :2, :2] = best_rot
    matrices[:, 2, :2] = mu_tgt - np.einsum("pi,pij->pj", mu_src, best_rot)
    matrices[:, 2, 2] = 1.0

    rmse = np.sqrt(best_error / counts.astype(float))
    return [
        TransformEstimate(
            matrix=matrices[p],
            error=float(best_error[p]),
            rmse=float(rmse[p]),
            theta=float(best_theta[p] % (2 * math.pi)),
            reflected=bool(best_reflect[p]),
            n_correspondences=int(counts[p]),
        )
        for p in range(n_problems)
    ]


def _masked_centroids(
    src: np.ndarray, tgt: np.ndarray, valid: np.ndarray, cnt: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    vmask = valid[..., None]
    mu_src = np.where(vmask, src, 0.0).sum(axis=1) / cnt[:, None]
    mu_tgt = np.where(vmask, tgt, 0.0).sum(axis=1) / cnt[:, None]
    return mu_src, mu_tgt


def estimate_transforms_closed_form_batch(
    sources: np.ndarray,
    targets: np.ndarray,
    valid: Optional[np.ndarray] = None,
    *,
    backend=None,
) -> list:
    """Closed-form transform estimation over a stack of problems.

    Parameters
    ----------
    sources, targets : ndarray of shape (P, S, 2)
        Padded correspondence stacks: problem ``p`` uses the rows where
        ``valid[p]`` is True (source-frame points and their target-frame
        counterparts).  Padded rows may hold anything.
    valid : ndarray of bool, shape (P, S), optional
        Mask of real correspondence slots; all-True when omitted.

    Per problem this evaluates the same four candidates as
    :func:`estimate_transform_closed_form` — both roots of the paper's
    center-of-mass rotation equation, with and without reflection — and
    keeps the least-error combination; masked statistics (sums over
    valid slots divided by the count) replace the scalar ``np.mean``,
    so results agree with the scalar estimator to floating-point
    reduction tolerance.  On the default NumPy *backend* the loop below
    runs unchanged (the pre-seam code path); any other backend
    dispatches the candidate evaluation to the portable Array-API twin
    and composes the matrices host-side.  Returns one
    :class:`TransformEstimate` per problem, in order.
    """
    src, tgt, valid, counts = _validate_transform_stacks(sources, targets, valid)
    n_problems = src.shape[0]
    if n_problems == 0:
        return []

    from ..engine.backend import resolve_backend

    be = resolve_backend(backend)
    if not be.is_native_numpy:
        from ..engine.xp_kernels import transforms_closed_form_xp

        best_rot, best_theta, best_error, best_reflect = transforms_closed_form_xp(
            be, src, tgt, valid
        )
        cnt = counts.astype(float)
        mu_src, mu_tgt = _masked_centroids(src, tgt, valid, cnt)
        return _compose_batch_results(
            best_rot, best_theta, best_error, best_reflect, mu_src, mu_tgt, counts
        )

    cnt = counts.astype(float)
    vmask = valid[..., None]
    mu_src, mu_tgt = _masked_centroids(src, tgt, valid, cnt)
    # Centered coordinates, zeroed on padding so reductions see exact 0s.
    u = np.where(valid, src[..., 0] - mu_src[:, 0:1], 0.0)
    v = np.where(valid, src[..., 1] - mu_src[:, 1:2], 0.0)
    x = np.where(valid, tgt[..., 0] - mu_tgt[:, 0:1], 0.0)
    y = np.where(valid, tgt[..., 1] - mu_tgt[:, 1:2], 0.0)

    best_error = np.full(n_problems, np.inf)
    best_theta = np.zeros(n_problems)
    best_reflect = np.zeros(n_problems, dtype=bool)
    best_rot = np.zeros((n_problems, 2, 2))
    centered = np.stack([u, v], axis=-1)

    for reflect in (False, True):
        # Reflection (f = -1) flips the second row of the rotation
        # block; for centered coordinates this is equivalent to negating
        # v and solving for a pure rotation (scalar estimator's trick).
        f = -1.0 if reflect else 1.0
        v_eff = -v if reflect else v
        c_xu = (x * u).sum(axis=1) / cnt
        c_yv = (y * v_eff).sum(axis=1) / cnt
        c_xv = (x * v_eff).sum(axis=1) / cnt
        c_yu = (y * u).sum(axis=1) / cnt
        theta_root = np.arctan2(c_xv - c_yu, c_xu + c_yv)
        for offset in (0.0, math.pi):
            theta = theta_root + offset
            c = np.cos(theta)
            s = np.sin(theta)
            # Row-vector rotation block of rigid_transform_matrix.
            rot = np.empty((n_problems, 2, 2))
            rot[:, 0, 0] = c
            rot[:, 0, 1] = -s
            rot[:, 1, 0] = f * s
            rot[:, 1, 1] = f * c
            mapped = np.einsum("psi,pij->psj", centered, rot)
            residual = np.where(
                vmask, mapped + mu_tgt[:, None, :] - tgt, 0.0
            )
            error = np.einsum("psi,psi->p", residual, residual)
            better = error < best_error
            best_error = np.where(better, error, best_error)
            best_theta = np.where(better, theta, best_theta)
            best_reflect = np.where(better, reflect, best_reflect)
            best_rot = np.where(better[:, None, None], rot, best_rot)

    return _compose_batch_results(
        best_rot, best_theta, best_error, best_reflect, mu_src, mu_tgt, counts
    )


def estimate_transforms_minimize_batch(
    sources: np.ndarray,
    targets: np.ndarray,
    valid: Optional[np.ndarray] = None,
    *,
    newton_steps: int = 3,
    backend=None,
) -> list:
    """Numerical-minimization transform estimation over a stack of problems.

    The batched form of :func:`estimate_transform_minimize` (the PR 3
    leftover: that path previously ran one ``scipy.optimize.minimize``
    per neighboring-map pair).  For centered correspondences the
    4-parameter objective reduces per reflection branch to a sinusoid
    in ``theta``::

        E_f(theta) = C - 2 (P cos(theta) + Q sin(theta))

    with ``P = sum(x u + y v_eff)`` and ``Q = sum(x v_eff - y u)``, the
    translation fixed at the centroid offset.  Each branch is therefore
    minimized exactly at ``theta* = atan2(Q, P)``; a short vectorized
    Newton polish on ``dE/dtheta = 0`` (*newton_steps* iterations)
    mirrors the scalar path's numerical refinement and washes out the
    seeding arithmetic.  Per problem the better reflection branch wins,
    matching the scalar Nelder-Mead reference to its convergence
    tolerance (``xatol=1e-10``) — pinned by
    ``tests/test_backend_parity.py``.

    Runs on any array backend; the arithmetic below is Array-API
    portable and dispatches through *backend* like the engine kernels.
    """
    src, tgt, valid, counts = _validate_transform_stacks(sources, targets, valid)
    n_problems = src.shape[0]
    if n_problems == 0:
        return []

    from ..engine.backend import resolve_backend

    be = resolve_backend(backend)
    xp = be.xp
    atan2 = getattr(xp, "atan2", None) or xp.arctan2

    cnt_host = counts.astype(float)
    mu_src, mu_tgt = _masked_centroids(src, tgt, valid, cnt_host)
    u_host = np.where(valid, src[..., 0] - mu_src[:, 0:1], 0.0)
    v_host = np.where(valid, src[..., 1] - mu_src[:, 1:2], 0.0)
    x_host = np.where(valid, tgt[..., 0] - mu_tgt[:, 0:1], 0.0)
    y_host = np.where(valid, tgt[..., 1] - mu_tgt[:, 1:2], 0.0)
    u = be.asarray(u_host)
    v = be.asarray(v_host)
    x = be.asarray(x_host)
    y = be.asarray(y_host)
    # Squared norms of the centered sets: the theta-independent term.
    const = xp.sum(u * u + v * v + x * x + y * y, axis=1)

    inf = xp.full(const.shape, float("inf"), dtype=xp.float64)
    best_error = inf
    best_theta = xp.zeros(const.shape, dtype=xp.float64)
    best_reflect = xp.zeros(const.shape, dtype=xp.float64)

    for reflect in (False, True):
        v_eff = -v if reflect else v
        p_coef = xp.sum(x * u + y * v_eff, axis=1)
        q_coef = xp.sum(x * v_eff - y * u, axis=1)
        theta = atan2(q_coef, p_coef)
        for _ in range(max(0, int(newton_steps))):
            # dE/dtheta = 2 (P sin - Q cos); d2E/dtheta2 = 2 (P cos + Q sin).
            d1 = p_coef * xp.sin(theta) - q_coef * xp.cos(theta)
            d2 = p_coef * xp.cos(theta) + q_coef * xp.sin(theta)
            safe = xp.where(
                xp.abs(d2) > 1e-300, d2, xp.full(d2.shape, 1.0, dtype=d2.dtype)
            )
            theta = theta - d1 / safe
        error = const - 2.0 * (p_coef * xp.cos(theta) + q_coef * xp.sin(theta))
        better = error < best_error
        best_error = xp.where(better, error, best_error)
        best_theta = xp.where(better, theta, best_theta)
        best_reflect = xp.where(
            better, xp.full(const.shape, 1.0 if reflect else 0.0), best_reflect
        )

    theta_host = be.to_numpy(best_theta)
    reflect_host = be.to_numpy(best_reflect) > 0.5
    # Rebuild the winning rotation blocks and the *exact* residual error
    # host-side (the sinusoid form above is algebraically equal but
    # accumulates differently; reporting the literal residual keeps the
    # scalar path's error semantics).
    c = np.cos(theta_host)
    s = np.sin(theta_host)
    f = np.where(reflect_host, -1.0, 1.0)
    best_rot = np.empty((n_problems, 2, 2))
    best_rot[:, 0, 0] = c
    best_rot[:, 0, 1] = -s
    best_rot[:, 1, 0] = f * s
    best_rot[:, 1, 1] = f * c
    centered = np.stack([u_host, v_host], axis=-1)
    mapped = np.einsum("psi,pij->psj", centered, best_rot)
    residual = np.where(
        valid[..., None], mapped + mu_tgt[:, None, :] - tgt, 0.0
    )
    best_error_host = np.einsum("psi,psi->p", residual, residual)

    return _compose_batch_results(
        best_rot, theta_host, best_error_host, reflect_host, mu_src, mu_tgt, counts
    )


def estimate_transform(source, target, method: str = "closed_form") -> TransformEstimate:
    """Dispatch to a transform estimator by name.

    Parameters
    ----------
    source, target : array-like of shape (n, 2)
        Corresponding point coordinates in the two frames.
    method : {"closed_form", "minimize"}
        ``"closed_form"`` is the paper's mote-friendly estimator (the
        default); ``"minimize"`` is the heavier reference method.
    """
    if method == "closed_form":
        return estimate_transform_closed_form(source, target)
    if method == "minimize":
        return estimate_transform_minimize(source, target)
    raise ValidationError(f"unknown transform method {method!r}")
