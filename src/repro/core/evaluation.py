"""Evaluation utilities: best-fit alignment and localization error metrics.

The paper reports "average localization error" — the mean distance
between actual node positions and estimates — after the computed
configuration has been "translated, rotated and flipped to achieve a
best-fit match with the actual node coordinates" (Section 4.2.2).  For
anchor-free methods (LSS, MDS) that alignment is part of the evaluation
protocol; for anchored methods (multilateration) estimates are already in
the global frame and no alignment is applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .._validation import as_positions
from ..errors import ValidationError
from .transforms import TransformEstimate, estimate_transform_minimize, estimate_transform_closed_form

__all__ = [
    "align_to_reference",
    "localization_errors",
    "LocalizationReport",
    "evaluate_localization",
    "error_histogram",
    "trimmed_mean_error",
]


def align_to_reference(estimated, actual, *, method: str = "closed_form") -> np.ndarray:
    """Rigidly align *estimated* coordinates onto *actual* coordinates.

    Finds the translation + rotation + optional reflection minimizing the
    summed squared distance between corresponding points (rigid
    Procrustes, no scaling — scaling would hide systematic ranging bias)
    and returns the transformed estimates.
    """
    est = as_positions(estimated, "estimated")
    act = as_positions(actual, "actual")
    if est.shape != act.shape:
        raise ValidationError(
            f"estimated and actual must match in shape; got {est.shape} vs {act.shape}"
        )
    if method == "minimize":
        fit = estimate_transform_minimize(est, act)
    else:
        fit = estimate_transform_closed_form(est, act)
    return fit.apply(est)


def localization_errors(estimated, actual) -> np.ndarray:
    """Per-node Euclidean position errors (no alignment applied)."""
    est = as_positions(estimated, "estimated", allow_empty=True)
    act = as_positions(actual, "actual", allow_empty=True)
    if est.shape != act.shape:
        raise ValidationError(
            f"estimated and actual must match in shape; got {est.shape} vs {act.shape}"
        )
    diff = est - act
    return np.hypot(diff[:, 0], diff[:, 1])


@dataclass(frozen=True)
class LocalizationReport:
    """Summary statistics for one localization run.

    Attributes
    ----------
    n_total : int
        Nodes the algorithm was asked to localize.
    n_localized : int
        Nodes for which an estimate was produced.
    average_error : float
        Mean position error over localized nodes (the paper's headline
        metric).  ``nan`` when nothing was localized.
    median_error, max_error : float
        Additional robust statistics.
    errors : ndarray
        Per-node errors for localized nodes (aligned if requested).
    localized_fraction : float
        ``n_localized / n_total``.
    """

    n_total: int
    n_localized: int
    average_error: float
    median_error: float
    max_error: float
    errors: np.ndarray = field(repr=False)

    @property
    def localized_fraction(self) -> float:
        if self.n_total == 0:
            return 0.0
        return self.n_localized / self.n_total


def evaluate_localization(
    estimated,
    actual,
    *,
    localized_mask: Optional[Sequence[bool]] = None,
    align: bool = False,
) -> LocalizationReport:
    """Produce a :class:`LocalizationReport` for a localization result.

    Parameters
    ----------
    estimated, actual : array-like of shape (n, 2)
        Estimated and true coordinates for all *n* nodes.  Rows of
        *estimated* for unlocalized nodes may hold any value (e.g. nan)
        as long as *localized_mask* marks them False.
    localized_mask : sequence of bool, optional
        Which nodes were actually localized.  Defaults to all-True,
        except that rows containing nan in *estimated* are automatically
        treated as unlocalized.
    align : bool
        Apply rigid best-fit alignment before computing errors (use for
        anchor-free relative-coordinate methods).
    """
    est = np.asarray(estimated, dtype=float)
    act = as_positions(actual, "actual", allow_empty=True)
    if est.size == 0:
        est = est.reshape(0, 2)
    if est.shape != act.shape:
        raise ValidationError(
            f"estimated and actual must match in shape; got {est.shape} vs {act.shape}"
        )
    finite = np.all(np.isfinite(est), axis=1)
    if localized_mask is None:
        mask = finite
    else:
        mask = np.asarray(localized_mask, dtype=bool)
        if mask.shape != (act.shape[0],):
            raise ValidationError(
                f"localized_mask must have shape ({act.shape[0]},); got {mask.shape}"
            )
        mask = mask & finite

    n_total = act.shape[0]
    n_localized = int(mask.sum())
    if n_localized == 0:
        return LocalizationReport(
            n_total=n_total,
            n_localized=0,
            average_error=float("nan"),
            median_error=float("nan"),
            max_error=float("nan"),
            errors=np.zeros(0),
        )

    est_loc = est[mask]
    act_loc = act[mask]
    if align and n_localized >= 2:
        est_loc = align_to_reference(est_loc, act_loc)
    errors = localization_errors(est_loc, act_loc)
    return LocalizationReport(
        n_total=n_total,
        n_localized=n_localized,
        average_error=float(errors.mean()),
        median_error=float(np.median(errors)),
        max_error=float(errors.max()),
        errors=errors,
    )


def error_histogram(
    errors, *, bin_width: float = 0.1, symmetric: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of (signed) ranging or localization errors.

    Returns ``(bin_edges, counts)``.  With ``symmetric=True`` the bins
    are centered on zero, matching the paper's ranging-error histograms
    (Figures 6 and 7).
    """
    errs = np.asarray(errors, dtype=float)
    errs = errs[np.isfinite(errs)]
    if bin_width <= 0:
        raise ValidationError("bin_width must be positive")
    if errs.size == 0:
        edges = np.array([-bin_width / 2, bin_width / 2]) if symmetric else np.array([0, bin_width])
        return edges, np.zeros(1, dtype=np.int64)
    if symmetric:
        extent = max(abs(errs.min()), abs(errs.max()), bin_width)
        n_bins = int(np.ceil(extent / bin_width))
        edges = np.arange(-n_bins, n_bins + 1) * bin_width + bin_width / 2.0
        edges = np.concatenate([[-(n_bins + 0.5) * bin_width], edges])
    else:
        lo = np.floor(errs.min() / bin_width) * bin_width
        hi = np.ceil(errs.max() / bin_width) * bin_width
        edges = np.arange(lo, hi + bin_width, bin_width)
    counts, edges = np.histogram(errs, bins=edges)
    return edges, counts


def trimmed_mean_error(errors, *, drop_worst: int = 0) -> float:
    """Mean error after dropping the *drop_worst* largest values.

    The paper repeatedly reports both the raw average and the average
    "without the largest k errors" (e.g. 2.2 m -> 1.5 m without the worst
    5 in Figure 18); this helper standardizes that computation.
    """
    errs = np.sort(np.asarray(errors, dtype=float))
    if drop_worst < 0:
        raise ValidationError("drop_worst must be non-negative")
    if drop_worst >= errs.size:
        return float("nan")
    if drop_worst:
        errs = errs[:-drop_worst]
    return float(errs.mean())
