"""Distributed LSS localization (Section 4.3, Figures 24 and 25).

Three steps, each implemented as a separately testable stage:

1. **Local localization** — every node runs LSS over itself and its
   measurement neighbors, producing a *local relative coordinate
   system* (:func:`build_local_maps`; Section 4.3's per-node stage,
   whose sparse-data failure mode is Figure 24 and whose
   extended-measurement recovery is Figure 25).
2. **Pairwise transforms** — for each pair of neighboring nodes, a
   rigid transform between their local frames is estimated from their
   shared neighbors (:func:`build_transforms`), using either the paper's
   closed-form center-of-mass method (Section 4.3.1) or the heavier
   minimization.
3. **Alignment** — the root's frame is flooded through the network;
   each node composes the received frame with its pairwise transform
   and forwards it, ending with every reachable node knowing its
   position in the root's coordinate system
   (:func:`distributed_localize`).

The algorithm needs only two local data exchanges per node plus one
flood, making it scalable — at the cost the paper measures in Figure 24:
with sparse measurements a single bad pairwise transform corrupts the
whole subtree behind it.  The ``tree="best"`` option implements the
obvious mitigation (prefer low-residual transforms when building the
alignment tree), benchmarked as an ablation.

Execution paths
---------------
In the simulator this pipeline is embarrassingly batchable: a
deployment's local maps are many small independent LSS problems, and
its pairwise transforms many small independent closed-form fits.  With
the default ``DistributedConfig(solver="batched")`` steps 1 and 2 run
through the engine's stacked kernels — all local maps advance through
their perturbation-restart rounds in lockstep
(:func:`repro.engine.localmaps.solve_local_lss_stack`) and all pairwise
transforms are estimated in one vectorized pass
(:func:`repro.core.transforms.estimate_transforms_closed_form_batch`).
``solver="scalar"`` keeps the one-problem-at-a-time reference path; the
two paths consume perturbation randomness in different orders (batched
phases fits before trim-refits; scalar interleaves them per map), so
they agree to solver tolerance rather than bit-for-bit —
``tests/test_distributed.py`` and ``benchmarks/test_bench_distributed.py``
pin the agreement and the speedup.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .._validation import ensure_rng
from ..errors import GraphDisconnectedError, InsufficientDataError, ValidationError
from .geometry import apply_transform, compose_transforms
from .lss import LssConfig, lss_localize
from .mds import mds_map
from .measurements import EdgeList, MeasurementSet
from .transforms import TransformEstimate, estimate_transform

__all__ = [
    "DistributedConfig",
    "LocalMap",
    "DistributedResult",
    "build_local_maps",
    "build_transforms",
    "distributed_localize",
]


@dataclass(frozen=True)
class DistributedConfig:
    """Parameters of the distributed localization pipeline.

    Attributes
    ----------
    local_lss : LssConfig
        Configuration for the per-node local LSS runs (smaller budgets
        than the centralized runs — neighborhoods are tiny).
    transform_method : {"closed_form", "minimize"}
        Pairwise transform estimator; the paper's mote-friendly
        closed-form method is the default.
    min_shared : int
        Minimum shared-map points required to trust a pairwise
        transform (2 is the geometric minimum; 3 rejects more bad
        transforms at the cost of graph connectivity).
    tree : {"bfs", "best"}
        Alignment-tree construction: ``"bfs"`` is the paper's plain
        flood (first frame heard wins); ``"best"`` builds a
        minimum-residual tree over transform quality (extension).
    solver : {"batched", "scalar"}
        Execution path for steps 1 and 2: ``"batched"`` (default)
        stacks every local-map LSS problem and every pairwise transform
        fit through the engine's vectorized kernels; ``"scalar"`` is
        the per-problem reference path, kept selectable for the
        batched/scalar parity tests.  Both paths implement the same
        algorithm; they differ only in perturbation-noise ordering and
        floating-point reduction order.
    min_spacing_m : float or None
        Deployment minimum node spacing; when set, it is applied as the
        soft constraint of every *local* LSS run (local neighborhoods
        fold just like global configurations do).
    residual_trim_m : float or None
        Node-local consistency check: after the first local fit, edges
        whose residual exceeds this threshold (and whose confidence
        weight is below 1) are discarded and the map is refit.  In a
        small neighborhood a single uncorroborated garbage range can
        warp the whole local frame; this is the local analogue of the
        paper's cross-node consistency checks.  ``None`` disables.
    array_backend : str or None
        Array namespace for the batched kernels (see
        :mod:`repro.engine.backend`): ``None`` defers to the process
        default (``repro run --array-backend`` / ``REPRO_ARRAY_BACKEND``
        / NumPy).  An execution knob like ``solver`` — it never changes
        results on the NumPy path (determinism guarantee #9).
    """

    local_lss: LssConfig = field(
        default_factory=lambda: LssConfig(max_epochs=800, restarts=6, perturbation_m=2.0)
    )
    transform_method: str = "closed_form"
    min_shared: int = 2
    tree: str = "bfs"
    min_spacing_m: Optional[float] = None
    residual_trim_m: Optional[float] = 3.0
    solver: str = "batched"
    array_backend: Optional[str] = None

    def __post_init__(self):
        if self.transform_method not in ("closed_form", "minimize"):
            raise ValidationError("transform_method must be 'closed_form' or 'minimize'")
        if self.min_shared < 2:
            raise ValidationError("min_shared must be >= 2")
        if self.tree not in ("bfs", "best"):
            raise ValidationError("tree must be 'bfs' or 'best'")
        if self.solver not in ("batched", "scalar"):
            raise ValidationError("solver must be 'batched' or 'scalar'")
        if self.array_backend is not None:
            from ..engine.backend import BACKEND_NAMES

            if self.array_backend not in BACKEND_NAMES:
                raise ValidationError(
                    f"array_backend must be one of {BACKEND_NAMES} or None; "
                    f"got {self.array_backend!r}"
                )

    @property
    def effective_local_lss(self) -> LssConfig:
        """The local LSS config with the deployment spacing folded in."""
        if self.min_spacing_m is None:
            return self.local_lss
        from dataclasses import replace as _replace

        return _replace(self.local_lss, min_spacing_m=self.min_spacing_m)


@dataclass
class LocalMap:
    """One node's local relative coordinate system.

    ``coordinates`` maps node id -> (x, y) in this node's frame; the
    owner always has an entry for itself.
    """

    owner: int
    coordinates: Dict[int, np.ndarray]

    @property
    def members(self) -> List[int]:
        return sorted(self.coordinates)

    def coords_for(self, node_ids: Sequence[int]) -> np.ndarray:
        return np.asarray([self.coordinates[n] for n in node_ids])


@dataclass
class DistributedResult:
    """Outcome of the distributed pipeline.

    Attributes
    ----------
    positions : ndarray of shape (n, 2)
        Coordinates in the root's frame; nan where alignment failed.
    localized : ndarray of bool
        Mask of nodes with a position.
    root : int
        Root node id.
    local_maps : dict
        Node id -> LocalMap.
    transforms : dict
        (a, b) -> TransformEstimate mapping b's frame into a's frame,
        for each usable neighbor pair.
    parents : dict
        Alignment-tree parent pointers (root -> None).
    """

    positions: np.ndarray
    localized: np.ndarray
    root: int
    local_maps: Dict[int, LocalMap]
    transforms: Dict[Tuple[int, int], TransformEstimate]
    parents: Dict[int, Optional[int]]


def _as_edges(measurements, n_nodes: int) -> EdgeList:
    if isinstance(measurements, MeasurementSet):
        edges = measurements.to_edge_list()
    elif isinstance(measurements, EdgeList):
        edges = measurements
    else:
        raise ValidationError(
            f"measurements must be a MeasurementSet or EdgeList; got {type(measurements)!r}"
        )
    if len(edges) == 0:
        raise InsufficientDataError("no distance measurements supplied")
    if np.any(edges.pairs < 0) or np.any(edges.pairs >= n_nodes):
        raise ValidationError("edge indices outside [0, n_nodes)")
    return edges


def _neighborhood_problems(
    edges: EdgeList, n_nodes: int
) -> List[Tuple[int, List[int], EdgeList]]:
    """Collect every node's one-hop local-map problem.

    Returns ``(owner, members, local_edges)`` triples in owner order;
    ``local_edges`` is indexed by position in ``members``.  Nodes with
    fewer than two neighbors (or fewer than three usable local edges)
    yield no problem.  Shared by the scalar and batched solve paths, so
    both see the identical problem set.
    """
    neighbor_map: Dict[int, Set[int]] = {i: set() for i in range(n_nodes)}
    edge_lookup: Dict[Tuple[int, int], Tuple[float, float]] = {}
    for (i, j), d, w in zip(edges.pairs, edges.distances, edges.weights):
        i, j = int(i), int(j)
        neighbor_map[i].add(j)
        neighbor_map[j].add(i)
        edge_lookup[(min(i, j), max(i, j))] = (float(d), float(w))

    problems: List[Tuple[int, List[int], EdgeList]] = []
    for owner in range(n_nodes):
        members = sorted({owner} | neighbor_map[owner])
        if len(members) < 3:
            continue
        index = {node: k for k, node in enumerate(members)}
        local_pairs = []
        local_dists = []
        local_weights = []
        for a_pos, a in enumerate(members):
            for b in members[a_pos + 1 :]:
                key = (min(a, b), max(a, b))
                if key in edge_lookup:
                    d, w = edge_lookup[key]
                    local_pairs.append((index[a], index[b]))
                    local_dists.append(d)
                    local_weights.append(w)
        if len(local_pairs) < 3:
            continue
        local_edges = EdgeList(
            pairs=np.asarray(local_pairs, dtype=np.int64),
            distances=np.asarray(local_dists),
            weights=np.asarray(local_weights),
        )
        problems.append((owner, members, local_edges))
    return problems


def _mds_initial(local_edges: EdgeList, n_members: int) -> Optional[np.ndarray]:
    """MDS-MAP seed for one local minimization (None when impossible).

    Neighborhood graphs are dense enough that shortest-path completion
    plus classical MDS lands in the right basin nearly always, where a
    random start folds ~15% of the time.  The init is built from
    corroborated edges only — shortest-path completion amplifies a
    single garbage underestimate into many wrong entries, so
    uncorroborated ranges are excluded here (they still participate,
    down-weighted, in the refinement).
    """
    for min_weight in (0.5, 0.0):
        confident = local_edges.weights >= min_weight
        candidate_edges = EdgeList(
            pairs=local_edges.pairs[confident],
            distances=local_edges.distances[confident],
            weights=local_edges.weights[confident],
        )
        try:
            return mds_map(candidate_edges, n_members)
        except (GraphDisconnectedError, InsufficientDataError):
            continue
    return None


def _solve_local_maps_scalar(
    problems: List[Tuple[int, List[int], EdgeList]],
    config: DistributedConfig,
    rng,
) -> List[np.ndarray]:
    """Reference path: one LSS run (plus optional trim-refit) per map."""
    positions: List[np.ndarray] = []
    for owner, members, local_edges in problems:
        result = lss_localize(
            local_edges,
            len(members),
            config=config.effective_local_lss,
            initial=_mds_initial(local_edges, len(members)),
            rng=rng,
        )
        if config.residual_trim_m is not None:
            trimmed = _trim_local_edges(
                local_edges, result.positions, config.residual_trim_m
            )
            if trimmed is not None and len(trimmed) >= 3:
                result = lss_localize(
                    trimmed,
                    len(members),
                    config=config.effective_local_lss,
                    initial=result.positions,
                    rng=rng,
                )
        positions.append(result.positions)
    return positions


def _solve_local_maps_batched(
    problems: List[Tuple[int, List[int], EdgeList]],
    config: DistributedConfig,
    rng,
) -> List[np.ndarray]:
    """Batched path: all maps descend in lockstep through the engine.

    Phase 1 stacks every neighborhood's multistart LSS into one
    :func:`repro.engine.localmaps.solve_local_lss_stack` call; phase 2
    re-runs the subset whose residual trim dropped edges, again as one
    stack seeded from the phase-1 configurations.
    """
    from ..engine.localmaps import LocalLssProblem, solve_local_lss_stack

    lss_config = config.effective_local_lss
    stack = [
        LocalLssProblem(
            n_nodes=len(members),
            edges=local_edges,
            initial=_mds_initial(local_edges, len(members)),
        )
        for _, members, local_edges in problems
    ]
    solutions = solve_local_lss_stack(
        stack, config=lss_config, rng=rng, backend=config.array_backend
    )
    positions = [solution.positions for solution in solutions]

    if config.residual_trim_m is not None:
        refit_indices: List[int] = []
        refit_stack: List[LocalLssProblem] = []
        for k, (_, members, local_edges) in enumerate(problems):
            trimmed = _trim_local_edges(
                local_edges, positions[k], config.residual_trim_m
            )
            if trimmed is not None and len(trimmed) >= 3:
                refit_indices.append(k)
                refit_stack.append(
                    LocalLssProblem(
                        n_nodes=len(members), edges=trimmed, initial=positions[k]
                    )
                )
        if refit_stack:
            refits = solve_local_lss_stack(
                refit_stack, config=lss_config, rng=rng, backend=config.array_backend
            )
            for k, solution in zip(refit_indices, refits):
                positions[k] = solution.positions
    return positions


def build_local_maps(
    measurements,
    n_nodes: int,
    *,
    config: Optional[DistributedConfig] = None,
    rng=None,
) -> Dict[int, LocalMap]:
    """Step 1: run LSS in every node's one-hop neighborhood.

    Nodes with fewer than two neighbors cannot form a useful local map
    and are skipped (they may still be localized if they appear in
    neighbors' maps — but have no frame of their own to align).

    With ``config.solver == "batched"`` (the default) every
    neighborhood problem of the round — padded to the largest
    neighborhood — advances through its perturbation-restart rounds in
    one stacked engine descent; ``"scalar"`` solves them one at a time.
    Non-gradient local backends (``LssConfig(backend="lbfgs")``) only
    exist as scalar implementations, so they always take the per-map
    path regardless of ``config.solver``.
    """
    config = config if config is not None else DistributedConfig()
    rng = ensure_rng(rng)
    edges = _as_edges(measurements, n_nodes)
    problems = _neighborhood_problems(edges, n_nodes)
    batchable = config.effective_local_lss.backend in ("gd", "gd-scalar")
    if config.solver == "scalar" or not batchable:
        positions = _solve_local_maps_scalar(problems, config, rng)
    else:
        positions = _solve_local_maps_batched(problems, config, rng)

    maps: Dict[int, LocalMap] = {}
    for (owner, members, _), pts in zip(problems, positions):
        coordinates = {node: pts[k].copy() for k, node in enumerate(members)}
        maps[owner] = LocalMap(owner=owner, coordinates=coordinates)
    return maps


def _trim_local_edges(
    edges: EdgeList, positions: np.ndarray, threshold_m: float
) -> Optional[EdgeList]:
    """Drop low-confidence edges with large fit residuals.

    Returns the trimmed edge list, or None when nothing was trimmed.
    Full-confidence (bidirectionally corroborated) edges are held to a
    3x looser threshold: a persistent echo path overestimates *both*
    directions consistently, so even corroborated edges can be garbage,
    but they deserve more benefit of the doubt than one-shot ranges.
    """
    diff = positions[edges.pairs[:, 0]] - positions[edges.pairs[:, 1]]
    comp = np.hypot(diff[:, 0], diff[:, 1])
    residuals = np.abs(comp - edges.distances)
    drop = ((residuals > threshold_m) & (edges.weights < 1.0)) | (
        residuals > 3.0 * threshold_m
    )
    if not np.any(drop):
        return None
    keep = ~drop
    return EdgeList(
        pairs=edges.pairs[keep],
        distances=edges.distances[keep],
        weights=edges.weights[keep],
    )


def build_transforms(
    local_maps: Dict[int, LocalMap],
    *,
    config: Optional[DistributedConfig] = None,
) -> Dict[Tuple[int, int], TransformEstimate]:
    """Step 2: estimate frame transforms for every usable neighbor pair.

    Returns a dict keyed ``(a, b)`` holding the transform that maps
    coordinates in *b*'s frame into *a*'s frame.  Both directions are
    stored.  Pairs whose maps share fewer than ``config.min_shared``
    nodes are omitted.

    With ``config.solver == "batched"`` (the default), all pairs' fits
    — two directed problems per pair — are stacked into one batched
    estimator call:
    :func:`repro.core.transforms.estimate_transforms_closed_form_batch`
    for the closed-form method,
    :func:`repro.core.transforms.estimate_transforms_minimize_batch`
    for ``"minimize"`` (previously one ``scipy.optimize.minimize`` per
    pair).  ``solver="scalar"`` keeps the per-pair reference path.
    """
    config = config if config is not None else DistributedConfig()
    transforms: Dict[Tuple[int, int], TransformEstimate] = {}
    owners = sorted(local_maps)
    tasks: List[Tuple[int, int, np.ndarray, np.ndarray]] = []
    for a in owners:
        map_a = local_maps[a]
        for b in map_a.members:
            if b <= a or b not in local_maps:
                continue
            map_b = local_maps[b]
            shared = sorted(set(map_a.members) & set(map_b.members))
            if len(shared) < config.min_shared:
                continue
            source_b = map_b.coords_for(shared)
            target_a = map_a.coords_for(shared)
            tasks.append((a, b, source_b, target_a))
    if not tasks:
        return transforms

    if config.solver == "batched":
        from .transforms import (
            estimate_transforms_closed_form_batch,
            estimate_transforms_minimize_batch,
        )

        batch_estimator = (
            estimate_transforms_closed_form_batch
            if config.transform_method == "closed_form"
            else estimate_transforms_minimize_batch
        )
        # Two directed problems per pair: (b -> a) then (a -> b).
        max_shared = max(task[2].shape[0] for task in tasks)
        n_problems = 2 * len(tasks)
        sources = np.zeros((n_problems, max_shared, 2))
        targets = np.zeros((n_problems, max_shared, 2))
        valid = np.zeros((n_problems, max_shared), dtype=bool)
        for t, (_, _, source_b, target_a) in enumerate(tasks):
            n_shared = source_b.shape[0]
            sources[2 * t, :n_shared] = source_b
            targets[2 * t, :n_shared] = target_a
            sources[2 * t + 1, :n_shared] = target_a
            targets[2 * t + 1, :n_shared] = source_b
            valid[2 * t : 2 * t + 2, :n_shared] = True
        estimates = batch_estimator(
            sources, targets, valid, backend=config.array_backend
        )
        for t, (a, b, _, _) in enumerate(tasks):
            transforms[(a, b)] = estimates[2 * t]
            transforms[(b, a)] = estimates[2 * t + 1]
        return transforms

    for a, b, source_b, target_a in tasks:
        try:
            into_a = estimate_transform(
                source_b, target_a, method=config.transform_method
            )
            into_b = estimate_transform(
                target_a, source_b, method=config.transform_method
            )
        except InsufficientDataError:
            continue
        transforms[(a, b)] = into_a
        transforms[(b, a)] = into_b
    return transforms


def _alignment_tree_bfs(
    root: int, transforms: Dict[Tuple[int, int], TransformEstimate]
) -> Dict[int, Optional[int]]:
    """Plain flood order: parent = first node you hear the frame from."""
    parents: Dict[int, Optional[int]] = {root: None}
    frontier = [root]
    while frontier:
        next_frontier: List[int] = []
        for node in frontier:
            for (a, b) in transforms:
                if a != node or b in parents:
                    continue
                parents[b] = node
                next_frontier.append(b)
        frontier = next_frontier
    return parents


def _alignment_tree_best(
    root: int, transforms: Dict[Tuple[int, int], TransformEstimate]
) -> Dict[int, Optional[int]]:
    """Minimum accumulated-transform-residual tree (Dijkstra).

    Extension over the paper: prefer paths through well-constrained
    transforms, reducing the error amplification seen in Figure 24.
    """
    parents: Dict[int, Optional[int]] = {root: None}
    cost: Dict[int, float] = {root: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, root)]
    visited: Set[int] = set()
    while heap:
        c, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        for (a, b), estimate in transforms.items():
            if a != node:
                continue
            edge_cost = estimate.rmse
            candidate = c + edge_cost
            if b not in cost or candidate < cost[b]:
                cost[b] = candidate
                parents[b] = node
                heapq.heappush(heap, (candidate, b))
    return parents


def distributed_localize(
    measurements,
    n_nodes: int,
    root: int,
    *,
    config: Optional[DistributedConfig] = None,
    rng=None,
    local_maps: Optional[Dict[int, LocalMap]] = None,
) -> DistributedResult:
    """Run the full distributed pipeline.

    Parameters
    ----------
    measurements : MeasurementSet or EdgeList
        Range measurements.
    n_nodes : int
        Node count.
    root : int
        Node whose local frame becomes the global frame (the paper's
        Figure 24 used the node at (27, 36)).
    local_maps : dict, optional
        Precomputed step-1 output (lets callers reuse maps across
        experiments).
    """
    config = config if config is not None else DistributedConfig()
    rng = ensure_rng(rng)
    if not 0 <= root < n_nodes:
        raise ValidationError(f"root must be in [0, {n_nodes})")
    if local_maps is None:
        local_maps = build_local_maps(measurements, n_nodes, config=config, rng=rng)
    if root not in local_maps:
        raise InsufficientDataError(
            f"root node {root} has no local map (fewer than two neighbors)"
        )
    transforms = build_transforms(local_maps, config=config)

    if config.tree == "bfs":
        parents = _alignment_tree_bfs(root, transforms)
    else:
        parents = _alignment_tree_best(root, transforms)

    # Compose frame transforms down the tree: to_global[b] maps b-frame
    # row vectors into the root frame.
    to_global: Dict[int, np.ndarray] = {root: np.eye(3)}
    # Process nodes in tree order (parents before children).
    pending = [n for n in parents if n != root]
    progressed = True
    while pending and progressed:
        progressed = False
        remaining = []
        for node in pending:
            parent = parents[node]
            if parent in to_global:
                t_parent = to_global[parent]
                t_node_to_parent = transforms[(parent, node)].matrix
                to_global[node] = compose_transforms(t_node_to_parent, t_parent)
                progressed = True
            else:
                remaining.append(node)
        pending = remaining

    positions = np.full((n_nodes, 2), np.nan)
    for node, matrix in to_global.items():
        own = local_maps[node].coordinates[node].reshape(1, 2)
        positions[node] = apply_transform(own, matrix)[0]
    localized = np.all(np.isfinite(positions), axis=1)
    return DistributedResult(
        positions=positions,
        localized=localized,
        root=root,
        local_maps=local_maps,
        transforms=transforms,
        parents=parents,
    )
