"""Planar geometry primitives used throughout the localization suite.

The paper works exclusively in the plane (2-D localization), so all
routines here operate on ``(n, 2)`` coordinate arrays.  The rigid
transform convention follows the paper's homogeneous *row-vector* form::

    [x, y, 1] = [u, v, 1] @ T

with ``T`` a 3x3 matrix combining rotation, optional reflection, and
translation (Section 4.3.1 of the paper).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from .._validation import as_positions, check_non_negative, check_positive
from ..errors import ValidationError

__all__ = [
    "pairwise_distances",
    "distances_for_pairs",
    "euclidean",
    "circle_intersections",
    "all_pairs_circle_intersections",
    "rigid_transform_matrix",
    "apply_transform",
    "invert_transform",
    "compose_transforms",
    "decompose_transform",
    "triangle_inequality_holds",
    "centroid",
    "is_collinear",
]


def euclidean(p, q) -> float:
    """Euclidean distance between two planar points."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    return float(np.hypot(p[0] - q[0], p[1] - q[1]))


def pairwise_distances(points) -> np.ndarray:
    """Full symmetric ``(n, n)`` Euclidean distance matrix for *points*."""
    pts = as_positions(points, "points", allow_empty=True)
    diff = pts[:, None, :] - pts[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def distances_for_pairs(points, pairs) -> np.ndarray:
    """Euclidean distances for an ``(m, 2)`` array of index pairs."""
    pts = as_positions(points, "points", allow_empty=True)
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return np.zeros(0)
    diff = pts[pairs[:, 0]] - pts[pairs[:, 1]]
    return np.hypot(diff[:, 0], diff[:, 1])


def circle_intersections(
    center_a, radius_a: float, center_b, radius_b: float
) -> np.ndarray:
    """Intersection points of two circles.

    Returns an array of shape ``(k, 2)`` with ``k`` in {0, 1, 2}.  The
    tangent case returns a single point.  Concentric or non-intersecting
    circles return an empty array.  This primitive underlies the paper's
    *intersection consistency check* (Section 4.1.2): range circles drawn
    around anchors should intersect in a tight cluster near the true node
    position.
    """
    radius_a = check_non_negative(radius_a, "radius_a")
    radius_b = check_non_negative(radius_b, "radius_b")
    a = np.asarray(center_a, dtype=float)
    b = np.asarray(center_b, dtype=float)
    d = float(np.hypot(*(b - a)))
    if d == 0.0 or radius_a == 0.0 or radius_b == 0.0:
        # Concentric circles never intersect cleanly; a zero radius
        # (e.g. a garbage 0 m range estimate) cannot vouch for anything.
        return np.zeros((0, 2))
    if d > radius_a + radius_b or d < abs(radius_a - radius_b):
        return np.zeros((0, 2))
    # Distance from center_a to the chord's midpoint along the center line.
    along = (radius_a**2 - radius_b**2 + d**2) / (2.0 * d)
    h_sq = radius_a**2 - along**2
    if h_sq < 0.0:
        # Numerical noise near tangency.
        h_sq = 0.0
    h = math.sqrt(h_sq)
    mid = a + along * (b - a) / d
    if h == 0.0:
        return mid.reshape(1, 2)
    # Perpendicular direction to the center line.
    perp = np.array([-(b - a)[1], (b - a)[0]]) / d
    return np.vstack([mid + h * perp, mid - h * perp])


def all_pairs_circle_intersections(
    centers, radii
) -> Tuple[np.ndarray, np.ndarray]:
    """Intersection points for every pair of range circles.

    Parameters
    ----------
    centers : array-like of shape (n, 2)
        Circle centers (anchor positions).
    radii : array-like of shape (n,)
        Circle radii (measured distances).

    Returns
    -------
    points : ndarray of shape (m, 2)
        All intersection points found.
    owners : ndarray of shape (m, 2)
        For each point, the indices of the two circles that produced it.
    """
    centers = as_positions(centers, "centers")
    radii = np.asarray(radii, dtype=float)
    if radii.shape != (centers.shape[0],):
        raise ValidationError(
            f"radii must have shape ({centers.shape[0]},); got {radii.shape}"
        )
    points = []
    owners = []
    n = centers.shape[0]
    for i in range(n):
        for j in range(i + 1, n):
            pts = circle_intersections(centers[i], radii[i], centers[j], radii[j])
            for p in pts:
                points.append(p)
                owners.append((i, j))
    if not points:
        return np.zeros((0, 2)), np.zeros((0, 2), dtype=np.int64)
    return np.asarray(points), np.asarray(owners, dtype=np.int64)


def rigid_transform_matrix(
    theta: float, tx: float, ty: float, reflect: bool = False
) -> np.ndarray:
    """Build the paper's 3x3 homogeneous rigid-transform matrix.

    The matrix acts on row vectors ``[u, v, 1]``.  With reflection factor
    ``f in {+1, -1}``::

        [ cos(theta)   -sin(theta)  0 ]
        [ f*sin(theta)  f*cos(theta) 0 ]
        [ tx            ty           1 ]
    """
    f = -1.0 if reflect else 1.0
    c, s = math.cos(theta), math.sin(theta)
    return np.array(
        [
            [c, -s, 0.0],
            [f * s, f * c, 0.0],
            [tx, ty, 1.0],
        ]
    )


def apply_transform(points, transform) -> np.ndarray:
    """Apply a 3x3 row-vector homogeneous transform to ``(n, 2)`` points."""
    pts = as_positions(points, "points", allow_empty=True)
    transform = np.asarray(transform, dtype=float)
    if transform.shape != (3, 3):
        raise ValidationError(f"transform must be 3x3; got {transform.shape}")
    homogeneous = np.hstack([pts, np.ones((pts.shape[0], 1))])
    out = homogeneous @ transform
    return out[:, :2]


def invert_transform(transform) -> np.ndarray:
    """Inverse of a homogeneous rigid transform (still 3x3)."""
    transform = np.asarray(transform, dtype=float)
    if transform.shape != (3, 3):
        raise ValidationError(f"transform must be 3x3; got {transform.shape}")
    return np.linalg.inv(transform)


def compose_transforms(first, second) -> np.ndarray:
    """Compose two row-vector transforms: apply *first*, then *second*."""
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.shape != (3, 3) or second.shape != (3, 3):
        raise ValidationError("transforms must both be 3x3 matrices")
    return first @ second


def decompose_transform(transform) -> Tuple[float, float, float, bool]:
    """Recover ``(theta, tx, ty, reflect)`` from a rigid transform matrix.

    The inverse of :func:`rigid_transform_matrix`.  Raises
    :class:`ValidationError` if the matrix is not (close to) a rigid
    transform in the paper's row-vector convention.
    """
    t = np.asarray(transform, dtype=float)
    if t.shape != (3, 3):
        raise ValidationError(f"transform must be 3x3; got {t.shape}")
    linear = t[:2, :2]
    det = float(np.linalg.det(linear))
    if not math.isclose(abs(det), 1.0, rel_tol=0, abs_tol=1e-6):
        raise ValidationError(
            f"transform linear part has |det|={abs(det):.6f}; not rigid"
        )
    reflect = det < 0
    c = t[0, 0]
    s = -t[0, 1]
    theta = math.atan2(s, c)
    tx, ty = float(t[2, 0]), float(t[2, 1])
    return theta, tx, ty, reflect


def triangle_inequality_holds(a: float, b: float, c: float, *, slack: float = 0.0) -> bool:
    """Check whether side lengths *a*, *b*, *c* can form a triangle.

    The paper's consistency check (Section 3.5) discards triples of
    measurements where "the estimates of two sides of the triangle add up
    to less than the third".  A non-negative *slack* loosens the check to
    tolerate measurement noise: each pairwise sum may fall short of the
    third side by up to *slack* before the triple is rejected.
    """
    if min(a, b, c) < 0:
        raise ValidationError("side lengths must be non-negative")
    if slack < 0:
        raise ValidationError("slack must be non-negative")
    return (
        a + b + slack >= c
        and b + c + slack >= a
        and a + c + slack >= b
    )


def centroid(points) -> np.ndarray:
    """Center of mass of a point set (used by the transform estimator)."""
    pts = as_positions(points, "points")
    return pts.mean(axis=0)


def is_collinear(points, *, tol: float = 1e-9) -> bool:
    """True when all *points* lie (nearly) on a single line.

    Multilateration degenerates for collinear anchors; the solver uses
    this predicate to refuse ill-posed inputs.  *tol* is an absolute
    bound on the smallest singular value of the centered point matrix,
    scaled by the point-set spread.
    """
    pts = as_positions(points, "points")
    if pts.shape[0] <= 2:
        return True
    centered = pts - pts.mean(axis=0)
    scale = float(np.abs(centered).max())
    if scale == 0.0:
        return True
    singular_values = np.linalg.svd(centered / scale, compute_uv=False)
    return bool(singular_values[-1] < tol)
