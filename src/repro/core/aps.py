"""Ad-hoc Positioning System (APS) baselines: DV-hop and DV-distance.

Section 2 of the paper surveys Niculescu & Nath's APS family as the
main distributed trilateration alternative and observes that "the
DV-hop and DV-distance techniques work well only for isotropic networks
with uniform node density".  These baselines are implemented here so
the claim — and the comparison against the paper's LSS — can be run
rather than cited:

* **DV-hop** — anchors flood hop counts; every node keeps its minimum
  hop count to each anchor; each anchor computes an average
  distance-per-hop correction from its known distances to the other
  anchors and their hop counts; non-anchors multilaterate from
  ``hops * meters_per_hop``.
* **DV-distance** — the same, but propagating *accumulated measured
  distances* along the shortest measurement path instead of hop counts
  (no per-hop calibration needed; still biased long on bent paths).

Both reduce to shortest-path computations over the measurement graph,
followed by the library's standard multilateration.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from ..errors import InsufficientDataError, ValidationError
from .measurements import EdgeList, MeasurementSet
from .multilateration import NetworkLocalization, multilaterate

__all__ = ["dv_hop_localize", "dv_distance_localize"]


def _edges_of(measurements, n_nodes: int) -> EdgeList:
    if isinstance(measurements, MeasurementSet):
        edges = measurements.to_edge_list()
    elif isinstance(measurements, EdgeList):
        edges = measurements
    else:
        raise ValidationError(
            f"measurements must be a MeasurementSet or EdgeList; got {type(measurements)!r}"
        )
    if len(edges) == 0:
        raise InsufficientDataError("no measurements supplied")
    if np.any(edges.pairs < 0) or np.any(edges.pairs >= n_nodes):
        raise ValidationError("edge indices outside [0, n_nodes)")
    return edges


def _graph_matrix(edges: EdgeList, n_nodes: int, unit_weights: bool) -> csr_matrix:
    rows = np.concatenate([edges.pairs[:, 0], edges.pairs[:, 1]])
    cols = np.concatenate([edges.pairs[:, 1], edges.pairs[:, 0]])
    if unit_weights:
        vals = np.ones(rows.shape[0])
    else:
        vals = np.concatenate([edges.distances, edges.distances])
    return csr_matrix((vals, (rows, cols)), shape=(n_nodes, n_nodes))


def _check_anchors(anchor_positions: Dict[int, Sequence[float]], n_nodes: int):
    if len(anchor_positions) < 3:
        raise InsufficientDataError(
            f"APS needs at least three anchors; got {len(anchor_positions)}"
        )
    anchors = {}
    for node_id, pos in anchor_positions.items():
        node_id = int(node_id)
        if not 0 <= node_id < n_nodes:
            raise ValidationError(f"anchor id {node_id} outside [0, {n_nodes})")
        arr = np.asarray(pos, dtype=float)
        if arr.shape != (2,):
            raise ValidationError("anchor positions must be (x, y) pairs")
        anchors[node_id] = arr
    return anchors


def _aps_localize(
    distances_to_anchors: np.ndarray,
    anchors: Dict[int, np.ndarray],
    n_nodes: int,
    min_anchors: int,
    solver: str,
) -> NetworkLocalization:
    """Common multilateration stage over anchor-distance estimates.

    ``solver="gradient"`` stacks every node's anchor-distance problem
    into one masked batch and solves it through the engine; ``"scalar"``
    (per-node gradient descent) and ``"lm"`` (per-node scipy LM) are
    the per-node reference paths.
    """
    if solver not in ("gradient", "scalar", "lm"):
        raise ValidationError(f"unknown solver {solver!r}")
    if min_anchors < 3:
        raise ValidationError("min_anchors must be >= 3 for planar localization")
    anchor_ids = sorted(anchors)
    anchor_xy = np.asarray([anchors[a] for a in anchor_ids])
    positions = np.full((n_nodes, 2), np.nan)
    is_anchor = np.zeros(n_nodes, dtype=bool)
    anchors_per_node = np.zeros(n_nodes)
    for a in anchor_ids:
        positions[a] = anchors[a]
        is_anchor[a] = True
    if solver == "gradient":
        from ..engine.batch import solve_multilateration_batch

        prob_nodes = []
        anchor_sets = []
        dist_sets = []
        for node in range(n_nodes):
            if is_anchor[node]:
                continue
            dists = distances_to_anchors[node]
            usable = np.isfinite(dists)
            anchors_per_node[node] = usable.sum()
            if usable.sum() < min_anchors:
                continue
            prob_nodes.append(node)
            anchor_sets.append(anchor_xy[usable])
            dist_sets.append(dists[usable])
        if prob_nodes:
            weight_sets = [np.ones(d.shape[0]) for d in dist_sets]
            solved_pos, solved, _ = solve_multilateration_batch(
                anchor_sets,
                dist_sets,
                weight_sets,
                min_anchors=min_anchors,
                consistency_check=False,
            )
            for node, pos, ok in zip(prob_nodes, solved_pos, solved):
                if ok:
                    positions[node] = pos
    else:
        per_node_solver = "gradient" if solver == "scalar" else solver
        for node in range(n_nodes):
            if is_anchor[node]:
                continue
            dists = distances_to_anchors[node]
            usable = np.isfinite(dists)
            anchors_per_node[node] = usable.sum()
            if usable.sum() < min_anchors:
                continue
            try:
                result = multilaterate(
                    anchor_xy[usable],
                    dists[usable],
                    consistency_check=False,
                    solver=per_node_solver,
                    min_anchors=min_anchors,
                )
            except InsufficientDataError:
                continue
            positions[node] = result.position
    localized = np.all(np.isfinite(positions), axis=1)
    return NetworkLocalization(
        positions=positions,
        localized=localized,
        is_anchor=is_anchor,
        anchors_per_node=anchors_per_node,
    )


def dv_hop_localize(
    measurements,
    anchor_positions: Dict[int, Sequence[float]],
    n_nodes: int,
    *,
    min_anchors: int = 3,
    solver: str = "lm",
) -> NetworkLocalization:
    """DV-hop localization over the measurement connectivity graph.

    Parameters
    ----------
    measurements : MeasurementSet or EdgeList
        Connectivity; measured distances are used only by the anchors'
        own per-hop calibration (hop counts otherwise ignore them).
    anchor_positions : dict
        Node id -> known (x, y); at least three anchors.
    n_nodes : int
        Total node count.
    solver : {"lm", "gradient", "scalar"}
        Multilateration backend (Levenberg-Marquardt default — DV-hop's
        coarse distances benefit from the more robust solver).
        ``"gradient"`` batches every node's problem through the engine
        in one masked-array solve; ``"scalar"`` is its per-node
        reference path.
    """
    edges = _edges_of(measurements, n_nodes)
    anchors = _check_anchors(anchor_positions, n_nodes)
    anchor_ids = sorted(anchors)

    hop_graph = _graph_matrix(edges, n_nodes, unit_weights=True)
    hops = shortest_path(
        hop_graph, method="D", directed=False, indices=anchor_ids
    )  # (n_anchors, n_nodes)

    # Per-anchor meters-per-hop correction from anchor-anchor geometry.
    meters_per_hop = np.full(len(anchor_ids), np.nan)
    for i, a in enumerate(anchor_ids):
        total_m = 0.0
        total_hops = 0.0
        for j, b in enumerate(anchor_ids):
            if a == b or not np.isfinite(hops[i][b]) or hops[i][b] == 0:
                continue
            total_m += float(np.hypot(*(anchors[a] - anchors[b])))
            total_hops += float(hops[i][b])
        if total_hops > 0:
            meters_per_hop[i] = total_m / total_hops
    if not np.any(np.isfinite(meters_per_hop)):
        raise InsufficientDataError(
            "no anchor can reach another anchor; cannot calibrate DV-hop"
        )
    fallback = float(np.nanmean(meters_per_hop))
    meters_per_hop = np.where(np.isfinite(meters_per_hop), meters_per_hop, fallback)

    # In the real protocol a node uses the correction of the nearest
    # anchor (the first it hears from); emulate that.
    distances = np.full((n_nodes, len(anchor_ids)), np.nan)
    for node in range(n_nodes):
        node_hops = hops[:, node]
        finite = np.isfinite(node_hops)
        if not np.any(finite):
            continue
        nearest = int(np.nanargmin(node_hops))
        correction = meters_per_hop[nearest]
        distances[node, finite] = node_hops[finite] * correction
    return _aps_localize(distances, anchors, n_nodes, min_anchors, solver)


def dv_distance_localize(
    measurements,
    anchor_positions: Dict[int, Sequence[float]],
    n_nodes: int,
    *,
    min_anchors: int = 3,
    solver: str = "lm",
) -> NetworkLocalization:
    """DV-distance localization: propagate summed measured distances.

    Same protocol shape as DV-hop but each hop adds the *measured*
    link distance, so no per-hop calibration is needed.  Multi-hop
    estimates are upper bounds on the true Euclidean distance (paths
    bend), which is exactly the anisotropy failure mode.
    """
    edges = _edges_of(measurements, n_nodes)
    anchors = _check_anchors(anchor_positions, n_nodes)
    anchor_ids = sorted(anchors)
    dist_graph = _graph_matrix(edges, n_nodes, unit_weights=False)
    path_dist = shortest_path(
        dist_graph, method="D", directed=False, indices=anchor_ids
    )
    distances = np.where(np.isfinite(path_dist.T), path_dist.T, np.nan)
    return _aps_localize(distances, anchors, n_nodes, min_anchors, solver)
