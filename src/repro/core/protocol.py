"""The distributed localization algorithm as a message-passing protocol.

:mod:`repro.core.distributed` implements the *mathematics* of Section
4.3; this module runs the same three steps as an actual protocol over
the discrete-event :class:`~repro.network.simulator.NetworkSimulator`,
so the paper's cost claim can be verified rather than assumed:

    "This algorithm requires two local data exchanges per node and one
    round of flooding."

Protocol phases:

1. **Measurement exchange** — every node broadcasts its measured
   distances to its acoustic neighbors (local exchange #1).  Receivers
   that share an acoustic edge with the sender store the list; each
   node now knows the distances *among* its neighbors, as required for
   local LSS.
2. **Map exchange** — every node computes its local map (LSS over its
   neighborhood) and broadcasts the local coordinates (local exchange
   #2).  Each neighbor can then estimate the rigid transform between
   the two frames from the shared members.
3. **Alignment flood** — the root broadcasts its frame; every node, on
   first receipt from a neighbor it holds a transform for, re-expresses
   the frame in its own coordinates and rebroadcasts (the flood).

The result matches :func:`repro.core.distributed.distributed_localize`
(same math, different plumbing) and additionally reports per-phase
message counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .._validation import as_positions, ensure_rng
from ..errors import InsufficientDataError, ValidationError
from ..network.node import SensorNode
from ..network.radio import RadioModel
from ..network.simulator import NetworkSimulator
from .distributed import DistributedConfig, LocalMap, build_local_maps
from .geometry import apply_transform, compose_transforms
from .measurements import EdgeList, MeasurementSet
from .transforms import estimate_transform

__all__ = ["ProtocolResult", "run_distributed_protocol"]


@dataclass
class ProtocolResult:
    """Outcome of the simulated distributed-localization protocol.

    Attributes
    ----------
    positions : ndarray of shape (n, 2)
        Coordinates in the root's frame (nan where the flood or a
        transform never arrived).
    localized : ndarray of bool
        Mask of localized nodes.
    root : int
        Root node id.
    messages_per_phase : dict
        Phase name -> broadcasts sent in that phase.
    broadcasts_per_node : float
        Total broadcasts divided by node count; the paper's claim is
        that this is a small constant (two local exchanges + at most
        one flood relay each).
    """

    positions: np.ndarray
    localized: np.ndarray
    root: int
    messages_per_phase: Dict[str, int]
    broadcasts_per_node: float


def _acoustic_neighbors(edges: EdgeList, n_nodes: int) -> Dict[int, Set[int]]:
    neighbors: Dict[int, Set[int]] = {i: set() for i in range(n_nodes)}
    for (i, j) in edges.pairs:
        neighbors[int(i)].add(int(j))
        neighbors[int(j)].add(int(i))
    return neighbors


def run_distributed_protocol(
    measurements,
    positions,
    root: int,
    *,
    config: Optional[DistributedConfig] = None,
    radio: Optional[RadioModel] = None,
    rng=None,
) -> ProtocolResult:
    """Execute the three-phase protocol over a simulated radio network.

    Parameters
    ----------
    measurements : MeasurementSet or EdgeList
        Acoustic range measurements (defines the *acoustic* neighbor
        graph; local maps are built from it exactly as in the
        computational pipeline).
    positions : array-like of shape (n, 2)
        Ground-truth node positions — used only to decide radio
        reachability in the simulator, never by the algorithm.
    root : int
        Node whose frame becomes global.
    radio : RadioModel, optional
        Radio link model; defaults to a reliable 100 m radio (the
        paper's radios comfortably out-range the acoustics).
    """
    config = config if config is not None else DistributedConfig()
    rng = ensure_rng(rng)
    pts = as_positions(positions, "positions")
    n_nodes = pts.shape[0]
    if not 0 <= root < n_nodes:
        raise ValidationError(f"root must be in [0, {n_nodes})")

    if isinstance(measurements, MeasurementSet):
        edges = measurements.to_edge_list()
    elif isinstance(measurements, EdgeList):
        edges = measurements
    else:
        raise ValidationError(
            f"measurements must be a MeasurementSet or EdgeList; got {type(measurements)!r}"
        )
    neighbors = _acoustic_neighbors(edges, n_nodes)

    radio = radio if radio is not None else RadioModel(delivery_probability=1.0)
    nodes = [SensorNode(i, tuple(pts[i])) for i in range(n_nodes)]
    simulator = NetworkSimulator(nodes, radio=radio, rng=rng)
    messages_per_phase: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Phase 1: measurement exchange.  Each node broadcasts its edge
    # list; acoustic neighbors store it.  (In our formulation the
    # shared measurement set already encodes the result, so the phase
    # exists to account its cost and verify reachability.)
    # ------------------------------------------------------------------
    received_measurements: Dict[int, Set[int]] = {i: set() for i in range(n_nodes)}

    def phase1_handler(sim, node_id, message):
        sender = message.sender
        if sender in neighbors[node_id]:
            received_measurements[node_id].add(sender)

    simulator.register_default_handler(phase1_handler)
    start = simulator.stats.broadcasts
    for node in range(n_nodes):
        simulator.broadcast(node, ("measurements", node))
    simulator.run()
    messages_per_phase["measurement_exchange"] = simulator.stats.broadcasts - start

    # ------------------------------------------------------------------
    # Phase 2: local map computation + map exchange.
    # ------------------------------------------------------------------
    local_maps = build_local_maps(edges, n_nodes, config=config, rng=rng)

    received_maps: Dict[int, Dict[int, Dict[int, Tuple[float, float]]]] = {
        i: {} for i in range(n_nodes)
    }

    def phase2_handler(sim, node_id, message):
        kind, sender, payload = message.payload
        if sender in neighbors[node_id]:
            received_maps[node_id][sender] = payload

    simulator.register_default_handler(phase2_handler)
    start = simulator.stats.broadcasts
    for node, local_map in local_maps.items():
        payload = {k: tuple(v) for k, v in local_map.coordinates.items()}
        simulator.broadcast(node, ("map", node, payload))
    simulator.run()
    messages_per_phase["map_exchange"] = simulator.stats.broadcasts - start

    # Each node estimates transforms from received neighbor maps into
    # its own frame.
    transforms_into: Dict[int, Dict[int, np.ndarray]] = {i: {} for i in range(n_nodes)}
    for node, sender_maps in received_maps.items():
        if node not in local_maps:
            continue
        own = local_maps[node]
        for sender, coords in sender_maps.items():
            shared = sorted(set(own.members) & set(coords))
            if len(shared) < config.min_shared:
                continue
            source = np.asarray([coords[m] for m in shared])
            target = own.coords_for(shared)
            try:
                estimate = estimate_transform(
                    source, target, method=config.transform_method
                )
            except InsufficientDataError:
                continue
            transforms_into[node][sender] = estimate.matrix

    # ------------------------------------------------------------------
    # Phase 3: alignment flood.  Payload: (frame_owner, matrix mapping
    # frame_owner's coordinates into the global frame).  A receiver
    # holding a transform from the sender's frame into its own composes
    # and rebroadcasts its own frame's global transform.
    # ------------------------------------------------------------------
    to_global: Dict[int, np.ndarray] = {root: np.eye(3)}

    def phase3_handler(sim, node_id, message):
        kind, sender, matrix = message.payload
        if node_id in to_global:
            return
        t_sender_to_me = transforms_into[node_id].get(sender)
        if t_sender_to_me is None:
            return
        # Map my-frame coords into the sender's frame, then to global:
        # my->sender is the inverse of sender->me.
        t_me_to_sender = np.linalg.inv(t_sender_to_me)
        to_global[node_id] = compose_transforms(t_me_to_sender, matrix)
        sim.broadcast(node_id, ("frame", node_id, to_global[node_id]))

    simulator.register_default_handler(phase3_handler)
    start = simulator.stats.broadcasts
    simulator.broadcast(root, ("frame", root, to_global[root]))
    simulator.run()
    messages_per_phase["alignment_flood"] = simulator.stats.broadcasts - start

    positions_out = np.full((n_nodes, 2), np.nan)
    for node, matrix in to_global.items():
        if node not in local_maps:
            continue
        own = local_maps[node].coordinates[node].reshape(1, 2)
        positions_out[node] = apply_transform(own, matrix)[0]
    localized = np.all(np.isfinite(positions_out), axis=1)

    total_broadcasts = sum(messages_per_phase.values())
    return ProtocolResult(
        positions=positions_out,
        localized=localized,
        root=root,
        messages_per_phase=messages_per_phase,
        broadcasts_per_node=total_broadcasts / n_nodes,
    )
