"""Acoustic physics substrate: environments, propagation, detectors,
hardware variation, signals and impulsive noise."""

from .environment import ENVIRONMENTS, Environment, get_environment
from .hardware import HardwarePopulation, HardwareProfile
from .noise import NoiseBurstProcess
from .propagation import (
    LOUD_SPEAKER_SOURCE_LEVEL_DB,
    REFERENCE_DISTANCE_M,
    SPEED_OF_SOUND,
    STOCK_BUZZER_SOURCE_LEVEL_DB,
    propagation_delay_s,
    received_level_db,
    snr_db,
    spreading_loss_db,
)
from .signal import (
    DEFAULT_SAMPLING_RATE_HZ,
    DEFAULT_TONE_FREQUENCY_HZ,
    ChirpPattern,
    synthesize_waveform,
)
from .tone_detector import ToneDetectorModel, hit_probability

__all__ = [
    "Environment",
    "ENVIRONMENTS",
    "get_environment",
    "HardwareProfile",
    "HardwarePopulation",
    "NoiseBurstProcess",
    "SPEED_OF_SOUND",
    "REFERENCE_DISTANCE_M",
    "LOUD_SPEAKER_SOURCE_LEVEL_DB",
    "STOCK_BUZZER_SOURCE_LEVEL_DB",
    "spreading_loss_db",
    "received_level_db",
    "snr_db",
    "propagation_delay_s",
    "ChirpPattern",
    "synthesize_waveform",
    "DEFAULT_SAMPLING_RATE_HZ",
    "DEFAULT_TONE_FREQUENCY_HZ",
    "ToneDetectorModel",
    "hit_probability",
]
