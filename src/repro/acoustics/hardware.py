"""Per-unit hardware variation models.

Section 3.4 lists *unit-to-unit variation* as an error source: "the
microphones are rated at +/-3 dB sensitivity, and we have observed
variations of up to 5 dB on the loudspeakers" (Section 3.6.2), and "in
extreme cases, faulty hardware may result in very large errors".  The
simulator draws one :class:`HardwareProfile` per node so that a given
speaker-microphone pair has a *consistent* bias across rounds — exactly
the behaviour the paper's consistency checks target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_non_negative, check_probability, ensure_rng

__all__ = ["HardwareProfile", "HardwarePopulation"]


@dataclass(frozen=True)
class HardwareProfile:
    """Fixed per-node hardware characteristics.

    Attributes
    ----------
    speaker_gain_db : float
        Deviation of this node's speaker output from nominal.
    mic_gain_db : float
        Deviation of this node's microphone sensitivity from nominal.
    latency_bias_s : float
        Constant sensing/actuation latency deviation from the calibrated
        ``delta_const`` (it shows up as a per-node distance offset).
    faulty : bool
        Whether this unit is a lemon; faulty units produce wildly wrong
        detections (persistent large errors, correlated on the node).
    """

    speaker_gain_db: float = 0.0
    mic_gain_db: float = 0.0
    latency_bias_s: float = 0.0
    faulty: bool = False


@dataclass(frozen=True)
class HardwarePopulation:
    """Distribution from which per-node hardware profiles are drawn.

    Defaults follow the paper's figures: microphone sensitivity spread
    rated +/-3 dB (std ~1.5 dB), loudspeaker spread up to 5 dB observed
    (std ~2 dB), a small constant-latency spread corresponding to the
    10-20 cm calibration offset noted in Section 3.6, and a small
    probability of an outright faulty unit.
    """

    speaker_gain_std_db: float = 2.0
    mic_gain_std_db: float = 1.5
    latency_bias_std_s: float = 0.00035  # ~12 cm at 340 m/s
    faulty_probability: float = 0.01

    def __post_init__(self):
        check_non_negative(self.speaker_gain_std_db, "speaker_gain_std_db")
        check_non_negative(self.mic_gain_std_db, "mic_gain_std_db")
        check_non_negative(self.latency_bias_std_s, "latency_bias_std_s")
        check_probability(self.faulty_probability, "faulty_probability")

    def sample(self, rng=None) -> HardwareProfile:
        """Draw one node's hardware profile."""
        rng = ensure_rng(rng)
        return HardwareProfile(
            speaker_gain_db=float(rng.normal(0.0, self.speaker_gain_std_db)),
            mic_gain_db=float(rng.normal(0.0, self.mic_gain_std_db)),
            latency_bias_s=float(rng.normal(0.0, self.latency_bias_std_s)),
            faulty=bool(rng.random() < self.faulty_probability),
        )

    def sample_many(self, n: int, rng=None):
        """Draw *n* independent hardware profiles."""
        rng = ensure_rng(rng)
        return [self.sample(rng) for _ in range(int(n))]
