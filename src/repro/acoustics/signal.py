"""Acoustic signal descriptions: chirp patterns and raw waveform synthesis.

Two consumers:

* The binary-detector ranging simulator needs the *schedule* of a chirp
  pattern — the paper's refined service emits "a sequence of identical
  chirps interspersed with intervals of silence", with "small random
  delays between elements of the pattern" to decorrelate echoes
  (Section 3.5).
* The sliding-DFT software tone detector (Section 3.7, Figure 10) is
  demonstrated on raw sampled waveforms; :func:`synthesize_waveform`
  produces the clean/noisy periodic-chirp signals of Figure 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .._validation import check_non_negative, check_positive, ensure_rng
from ..errors import ValidationError

__all__ = [
    "DEFAULT_SAMPLING_RATE_HZ",
    "DEFAULT_TONE_FREQUENCY_HZ",
    "ChirpPattern",
    "synthesize_waveform",
]

#: The acoustic detector sampling rate used in the experiments (16 kHz).
DEFAULT_SAMPLING_RATE_HZ = 16_000.0

#: The constant tone frequency emitted by the buzzer (4.3 kHz).
DEFAULT_TONE_FREQUENCY_HZ = 4_300.0


@dataclass(frozen=True)
class ChirpPattern:
    """Description of the emitted acoustic pattern.

    The experiments settled on 10 chirps of 8 ms each (Section 3.6):
    64 ms chirps caused late-detection overestimates, and chirps below
    8 ms did not give the speaker time to reach full power.

    Attributes
    ----------
    num_chirps : int
        Chirps per measurement round (the paper's ``m`` accumulation
        count; up to 15 fit the 4-bit accumulation buffer).
    chirp_duration_s : float
        Length of each chirp.
    interval_s : float
        Nominal silence between chirps.
    random_delay_max_s : float
        Upper bound of the uniform random extra delay inserted between
        pattern elements to decorrelate echoes.
    frequency_hz : float
        Tone frequency.
    """

    num_chirps: int = 10
    chirp_duration_s: float = 0.008
    interval_s: float = 0.05
    random_delay_max_s: float = 0.01
    frequency_hz: float = DEFAULT_TONE_FREQUENCY_HZ

    def __post_init__(self):
        if self.num_chirps < 1:
            raise ValidationError("num_chirps must be >= 1")
        if self.num_chirps > 15:
            raise ValidationError(
                "num_chirps must be <= 15: the service packs accumulation "
                "counts into 4 bits per sample (Section 3.6.2)"
            )
        check_positive(self.chirp_duration_s, "chirp_duration_s")
        check_non_negative(self.interval_s, "interval_s")
        check_non_negative(self.random_delay_max_s, "random_delay_max_s")
        check_positive(self.frequency_hz, "frequency_hz")

    def chirp_samples(self, sampling_rate_hz: float = DEFAULT_SAMPLING_RATE_HZ) -> int:
        """Number of detector samples covered by one chirp."""
        check_positive(sampling_rate_hz, "sampling_rate_hz")
        return max(1, int(round(self.chirp_duration_s * sampling_rate_hz)))

    def emission_times(self, rng=None) -> np.ndarray:
        """Start times (seconds) of each chirp relative to the first.

        Includes the random inter-element delays.  Used when modeling
        the full pattern on a single time axis (echo interference
        studies); the accumulate-per-chirp service realigns every chirp
        via its own radio sync message, so buffer offsets there are
        always relative to each chirp's own emission.
        """
        rng = ensure_rng(rng)
        starts = np.zeros(self.num_chirps)
        t = 0.0
        for k in range(self.num_chirps):
            starts[k] = t
            t += self.chirp_duration_s + self.interval_s
            if self.random_delay_max_s > 0:
                t += float(rng.uniform(0.0, self.random_delay_max_s))
        return starts


def synthesize_waveform(
    *,
    num_chirps: int = 4,
    chirp_duration_s: float = 0.004,
    period_s: float = 0.012,
    frequency_hz: float = DEFAULT_TONE_FREQUENCY_HZ,
    sampling_rate_hz: float = DEFAULT_SAMPLING_RATE_HZ,
    amplitude: float = 500.0,
    noise_std: float = 0.0,
    total_duration_s: Optional[float] = None,
    start_offset_s: float = 0.004,
    rng=None,
) -> np.ndarray:
    """Synthesize a raw sampled waveform of periodic constant-frequency chirps.

    This reproduces the input of Figure 10: a handful of tone bursts,
    optionally buried in wide-band Gaussian noise.  Returns an int-ish
    float array of raw samples (the XSM filter of Figure 9 operates on
    raw integer samples; we keep floats for convenience).
    """
    check_positive(chirp_duration_s, "chirp_duration_s")
    check_positive(period_s, "period_s")
    check_positive(sampling_rate_hz, "sampling_rate_hz")
    check_non_negative(noise_std, "noise_std")
    check_non_negative(start_offset_s, "start_offset_s")
    if num_chirps < 0:
        raise ValidationError("num_chirps must be non-negative")
    if total_duration_s is None:
        total_duration_s = start_offset_s + num_chirps * period_s + 0.008
    n = int(round(total_duration_s * sampling_rate_hz))
    t = np.arange(n) / sampling_rate_hz
    wave = np.zeros(n)
    for k in range(num_chirps):
        t0 = start_offset_s + k * period_s
        mask = (t >= t0) & (t < t0 + chirp_duration_s)
        wave[mask] = amplitude * np.sin(2.0 * math.pi * frequency_hz * (t[mask] - t0))
    if noise_std > 0:
        rng = ensure_rng(rng)
        wave = wave + rng.normal(0.0, noise_std, size=n)
    return wave
