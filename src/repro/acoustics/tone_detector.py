"""Hardware tone-detector model.

The MICA sensor board's phase-locked-loop tone detector outputs a binary
value per sample indicating presence of a 4.0-4.5 kHz tone.  The paper
(Section 3.5) models it as a binary time series ``b(t)`` with::

    P[b(t) = 1 | signal present]  >>  P[b(t) = 1 | no signal present]

and builds the detection algorithm entirely on that model.  We generate
``b(t)`` the same way: the *hit probability* while a chirp is audible is
a logistic function of the link SNR (saturating near 1 for strong
signals, falling to the false-positive floor as SNR crosses the
detection threshold), and the *false-positive probability* during
silence comes from the environment preset (optionally elevated during
noise bursts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._validation import check_positive, check_probability, ensure_rng

__all__ = ["ToneDetectorModel", "hit_probability"]


def hit_probability(
    snr_db,
    *,
    threshold_db: float = 8.0,
    width_db: float = 3.0,
    saturation: float = 0.85,
    floor: float = 0.0,
):
    """Per-sample probability of a tone detection given the link SNR.

    A logistic curve: ``floor + (saturation - floor) * sigmoid((snr -
    threshold) / width)``.  ``saturation`` < 1 reflects that even a
    strong tone is not reported on every sample by the real PLL detector
    ("it sometimes fails to recognize the presence of a signal,
    particularly at high sampling rates" — Section 3.5).
    """
    threshold_db = float(threshold_db)
    width_db = check_positive(width_db, "width_db")
    saturation = check_probability(saturation, "saturation")
    floor = check_probability(floor, "floor")
    if floor > saturation:
        raise ValueError("floor must not exceed saturation")
    snr = np.asarray(snr_db, dtype=float)
    sigmoid = 1.0 / (1.0 + np.exp(-(snr - threshold_db) / width_db))
    return floor + (saturation - floor) * sigmoid


@dataclass(frozen=True)
class ToneDetectorModel:
    """Stochastic binary tone detector.

    Parameters mirror :func:`hit_probability`; an instance is shared by
    all receivers in a simulation (unit-to-unit variation enters through
    the SNR, not the detector curve).
    """

    threshold_db: float = 8.0
    width_db: float = 3.0
    saturation: float = 0.85

    def hit_probability(self, snr_db):
        """Hit probability for one or more SNR values."""
        return hit_probability(
            snr_db,
            threshold_db=self.threshold_db,
            width_db=self.width_db,
            saturation=self.saturation,
        )

    def sample_signal(self, snr_db: float, n_samples: int, rng=None) -> np.ndarray:
        """Binary detector output for *n_samples* of audible tone."""
        rng = ensure_rng(rng)
        p = float(self.hit_probability(snr_db))
        return (rng.random(n_samples) < p).astype(np.uint8)

    def sample_noise(
        self, false_positive_rate: float, n_samples: int, rng=None
    ) -> np.ndarray:
        """Binary detector output for *n_samples* of background noise."""
        rng = ensure_rng(rng)
        p = check_probability(false_positive_rate, "false_positive_rate")
        return (rng.random(n_samples) < p).astype(np.uint8)
