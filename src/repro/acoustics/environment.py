"""Acoustic environment presets.

The paper evaluates ranging in four settings with very different acoustic
behaviour (Sections 3.3 and 3.6):

* **urban** — pavement/gravel/short grass among buildings; long detection
  range but frequent echoes from nearby structures (Figure 2's
  underestimates) and moderate ambient noise.
* **grass** — flat grassy field, 10-15 cm blades; strong excess
  attenuation (max detection ~20 m, reliable ~10 m), occasional loud
  aircraft noise (the airport site of Section 3.6).
* **pavement** — parking lot; lowest attenuation (max ~35-50 m, reliable
  ~25 m).
* **wooded** — >20 cm grass plus scattered trees; strongest attenuation.

Each preset fixes the parameters of the propagation, noise and echo
models.  Values are calibrated so the simulated service reproduces the
paper's reported detection ranges and error statistics; see
EXPERIMENTS.md for the calibration evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from .._validation import check_non_negative, check_probability
from ..errors import ValidationError

__all__ = ["Environment", "ENVIRONMENTS", "get_environment"]


@dataclass(frozen=True)
class Environment:
    """Parameters describing an acoustic deployment environment.

    Attributes
    ----------
    name : str
        Preset identifier.
    excess_attenuation_db_per_m : float
        Attenuation beyond spherical spreading (ground/vegetation
        absorption), in dB per meter.
    noise_floor_db : float
        Ambient background noise level in dB SPL within the detector's
        band.
    false_positive_rate : float
        Per-sample probability that the hardware tone detector reports a
        tone when only background noise is present.
    noise_burst_rate_hz : float
        Rate of impulsive wide-band noise events (birds, footsteps,
        aircraft) that temporarily raise the false-positive rate.
    noise_burst_duration_s : float
        Typical duration of one noise burst.
    noise_burst_fp_rate : float
        Per-sample false-positive probability during a burst.
    echo_probability : float
        Probability that a given receiver experiences a detectable echo
        path for a given source (multipath off buildings, trees).
    echo_delay_range_s : tuple of (float, float)
        Min/max extra propagation delay of the echo path.
    echo_strength : float
        Multiplier on the direct path's per-sample hit probability for
        echo arrivals (0..1).
    ground_variation_db : float
        Standard deviation of per-link attenuation variation (patches of
        taller grass etc.), geographically correlated in the simulator.
    """

    name: str
    excess_attenuation_db_per_m: float
    noise_floor_db: float
    false_positive_rate: float
    noise_burst_rate_hz: float
    noise_burst_duration_s: float
    noise_burst_fp_rate: float
    echo_probability: float
    echo_delay_range_s: tuple
    echo_strength: float
    ground_variation_db: float

    def __post_init__(self):
        check_non_negative(self.excess_attenuation_db_per_m, "excess_attenuation_db_per_m")
        check_probability(self.false_positive_rate, "false_positive_rate")
        check_non_negative(self.noise_burst_rate_hz, "noise_burst_rate_hz")
        check_non_negative(self.noise_burst_duration_s, "noise_burst_duration_s")
        check_probability(self.noise_burst_fp_rate, "noise_burst_fp_rate")
        check_probability(self.echo_probability, "echo_probability")
        check_probability(self.echo_strength, "echo_strength")
        check_non_negative(self.ground_variation_db, "ground_variation_db")
        lo, hi = self.echo_delay_range_s
        if lo < 0 or hi < lo:
            raise ValidationError("echo_delay_range_s must satisfy 0 <= lo <= hi")

    def with_overrides(self, **kwargs) -> "Environment":
        """A copy of this environment with selected fields replaced."""
        return replace(self, **kwargs)


ENVIRONMENTS: Dict[str, Environment] = {
    "grass": Environment(
        name="grass",
        excess_attenuation_db_per_m=1.75,
        noise_floor_db=32.0,
        false_positive_rate=0.0005,
        noise_burst_rate_hz=0.08,
        noise_burst_duration_s=0.012,
        noise_burst_fp_rate=0.35,
        echo_probability=0.03,
        echo_delay_range_s=(0.004, 0.030),
        echo_strength=0.25,
        ground_variation_db=6.0,
    ),
    "pavement": Environment(
        name="pavement",
        excess_attenuation_db_per_m=0.70,
        noise_floor_db=30.0,
        false_positive_rate=0.0003,
        noise_burst_rate_hz=0.04,
        noise_burst_duration_s=0.010,
        noise_burst_fp_rate=0.30,
        echo_probability=0.08,
        echo_delay_range_s=(0.004, 0.040),
        echo_strength=0.30,
        ground_variation_db=2.0,
    ),
    "urban": Environment(
        name="urban",
        excess_attenuation_db_per_m=0.55,
        noise_floor_db=38.0,
        false_positive_rate=0.00025,
        noise_burst_rate_hz=0.15,
        noise_burst_duration_s=0.015,
        noise_burst_fp_rate=0.40,
        echo_probability=0.35,
        echo_delay_range_s=(0.003, 0.050),
        echo_strength=0.55,
        ground_variation_db=3.0,
    ),
    "wooded": Environment(
        name="wooded",
        excess_attenuation_db_per_m=1.8,
        noise_floor_db=34.0,
        false_positive_rate=0.0006,
        noise_burst_rate_hz=0.12,
        noise_burst_duration_s=0.015,
        noise_burst_fp_rate=0.35,
        echo_probability=0.15,
        echo_delay_range_s=(0.005, 0.040),
        echo_strength=0.35,
        ground_variation_db=5.0,
    ),
}


def get_environment(name: str) -> Environment:
    """Look up an environment preset by name.

    Raises :class:`repro.errors.ValidationError` listing the valid
    presets when *name* is unknown.
    """
    try:
        return ENVIRONMENTS[name]
    except KeyError:
        raise ValidationError(
            f"unknown environment {name!r}; valid presets: {sorted(ENVIRONMENTS)}"
        ) from None
