"""Acoustic propagation model: spreading loss, excess attenuation, SNR.

The paper's refined ranging service detects a 4.3 kHz tone through a
binary hardware detector whose hit probability rises sharply with the
signal-to-noise ratio at the microphone.  We model received level as::

    RL(d) = SL - 20 log10(d / d_ref) - alpha * d + unit_gain + link_gain

where ``SL`` is the source level at the reference distance ``d_ref``
(10 cm — the distance at which the paper quotes 105 dB for the extended
speaker and 88 dB for the stock MTS310 buzzer), ``20 log10`` is
spherical spreading, ``alpha`` the environment's excess attenuation,
``unit_gain`` the speaker/microphone unit-to-unit variation and
``link_gain`` the geographically-correlated ground-cover variation.

SNR(d) = RL(d) - noise_floor feeds the tone-detector hit probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._validation import check_non_negative, check_positive
from .environment import Environment

__all__ = [
    "SPEED_OF_SOUND",
    "REFERENCE_DISTANCE_M",
    "LOUD_SPEAKER_SOURCE_LEVEL_DB",
    "STOCK_BUZZER_SOURCE_LEVEL_DB",
    "spreading_loss_db",
    "received_level_db",
    "snr_db",
    "propagation_delay_s",
]

#: Speed of sound used throughout the paper (Section 3): 340 m/s.
SPEED_OF_SOUND = 340.0

#: Distance at which source levels are specified (10 cm; Section 3.2).
REFERENCE_DISTANCE_M = 0.1

#: Output power of the $5 piezo-electric extension speaker (Section 3.2).
LOUD_SPEAKER_SOURCE_LEVEL_DB = 105.0

#: Output power of the original Ario S14T40A buzzer on the MTS310.
STOCK_BUZZER_SOURCE_LEVEL_DB = 88.0


def spreading_loss_db(distance_m, reference_m: float = REFERENCE_DISTANCE_M):
    """Spherical spreading loss ``20 log10(d / d_ref)`` in dB.

    Accepts scalars or arrays.  Distances below the reference distance
    are clamped to it (a microphone cannot be closer than the speaker's
    own reference point in this model).
    """
    reference_m = check_positive(reference_m, "reference_m")
    d = np.maximum(np.asarray(distance_m, dtype=float), reference_m)
    return 20.0 * np.log10(d / reference_m)


def received_level_db(
    distance_m,
    environment: Environment,
    *,
    source_level_db: float = LOUD_SPEAKER_SOURCE_LEVEL_DB,
    unit_gain_db: float = 0.0,
    link_gain_db: float = 0.0,
):
    """Received signal level at the microphone, in dB SPL."""
    d = np.asarray(distance_m, dtype=float)
    return (
        source_level_db
        - spreading_loss_db(d)
        - environment.excess_attenuation_db_per_m * d
        + unit_gain_db
        + link_gain_db
    )


def snr_db(
    distance_m,
    environment: Environment,
    *,
    source_level_db: float = LOUD_SPEAKER_SOURCE_LEVEL_DB,
    unit_gain_db: float = 0.0,
    link_gain_db: float = 0.0,
):
    """Signal-to-noise ratio at the microphone in dB."""
    return (
        received_level_db(
            distance_m,
            environment,
            source_level_db=source_level_db,
            unit_gain_db=unit_gain_db,
            link_gain_db=link_gain_db,
        )
        - environment.noise_floor_db
    )


def propagation_delay_s(distance_m, speed_of_sound: float = SPEED_OF_SOUND):
    """Acoustic propagation delay for a distance, in seconds."""
    speed_of_sound = check_positive(speed_of_sound, "speed_of_sound")
    d = np.asarray(distance_m, dtype=float)
    if np.any(d < 0):
        raise ValueError("distances must be non-negative")
    return d / speed_of_sound
