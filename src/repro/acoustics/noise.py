"""Impulsive ambient-noise model.

Beyond the stationary noise floor (part of the SNR model), the paper's
field sites had *impulsive* wide-band noise: "birds' chirping, wind
noise, footsteps" (Section 3.5) and "occasional loud aircraft engine
noise" (Section 3.6).  Such events raise the tone detector's
false-positive probability for their duration and — crucially — are
*uncorrelated across ranging attempts*, which is exactly why the paper's
multi-chirp accumulation defeats them.

:class:`NoiseBurstProcess` is a Poisson process of bursts; the ranging
simulator asks it for a per-sample false-positive-probability track.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_non_negative, check_positive, check_probability, ensure_rng
from .environment import Environment

__all__ = ["NoiseBurstProcess"]


@dataclass(frozen=True)
class NoiseBurstProcess:
    """Poisson process of impulsive noise bursts.

    Attributes
    ----------
    rate_hz : float
        Expected bursts per second of recording.
    duration_s : float
        Mean burst duration (exponentially distributed).
    fp_rate : float
        Tone-detector false-positive probability during a burst.
    """

    rate_hz: float
    duration_s: float
    fp_rate: float

    def __post_init__(self):
        check_non_negative(self.rate_hz, "rate_hz")
        check_positive(self.duration_s, "duration_s")
        check_probability(self.fp_rate, "fp_rate")

    @classmethod
    def from_environment(cls, environment: Environment) -> "NoiseBurstProcess":
        """Build the burst process described by an environment preset."""
        return cls(
            rate_hz=environment.noise_burst_rate_hz,
            duration_s=environment.noise_burst_duration_s,
            fp_rate=environment.noise_burst_fp_rate,
        )

    def false_positive_track(
        self,
        n_samples: int,
        sampling_rate_hz: float,
        base_rate: float,
        rng=None,
    ) -> np.ndarray:
        """Per-sample false-positive probability over a recording window.

        Starts from *base_rate* everywhere and raises the probability to
        ``max(base_rate, fp_rate)`` inside each burst.
        """
        check_positive(sampling_rate_hz, "sampling_rate_hz")
        check_probability(base_rate, "base_rate")
        if n_samples < 0:
            raise ValueError("n_samples must be non-negative")
        rng = ensure_rng(rng)
        track = np.full(n_samples, base_rate)
        if self.rate_hz == 0.0 or n_samples == 0:
            return track
        window_s = n_samples / sampling_rate_hz
        n_bursts = rng.poisson(self.rate_hz * window_s)
        for _ in range(int(n_bursts)):
            start_s = rng.uniform(0.0, window_s)
            length_s = rng.exponential(self.duration_s)
            start = int(start_s * sampling_rate_hz)
            stop = min(n_samples, start + max(1, int(length_s * sampling_rate_hz)))
            track[start:stop] = max(base_rate, self.fp_rate)
        return track
