"""Human-readable rendering of traces: summarize one, compare two.

Backs the ``repro trace summarize`` / ``repro trace compare`` CLI
subcommands.  Both functions take parsed traces (the output of
:func:`repro.telemetry.schema.read_trace`) and return plain text; the
CLI owns file handling and error reporting.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["summarize_trace", "compare_traces"]

_MANIFEST_ENV_KEYS = ("host", "platform", "python", "numpy", "repro_version")


def _span_table(records: List[Dict[str, Any]]) -> Dict[str, List[float]]:
    """Aggregate spans by path -> [calls, wall_s, cpu_s]."""
    table: Dict[str, List[float]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        row = table.setdefault(record["path"], [0, 0.0, 0.0])
        row[0] += 1
        row[1] += record["wall_s"]
        row[2] += record["cpu_s"]
    return table


def _tree_order(paths) -> List[str]:
    return sorted(paths, key=lambda p: tuple(p.split("/")))


def _fmt_num(value: float) -> str:
    if value != value:  # NaN
        return "nan"
    if value in (float("inf"), float("-inf")):
        return "inf" if value > 0 else "-inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _manifest_lines(manifest: Dict[str, Any]) -> List[str]:
    lines = [f"schema: v{manifest.get('schema', '?')}"]
    env = ", ".join(
        f"{key}={manifest[key]}" for key in _MANIFEST_ENV_KEYS if key in manifest
    )
    if env:
        lines.append(env)
    run_keys = [
        key
        for key in sorted(manifest)
        if key not in _MANIFEST_ENV_KEYS
        and key not in ("type", "schema", "created_unix", "pid")
    ]
    if run_keys:
        lines.append(
            ", ".join(f"{key}={manifest[key]}" for key in run_keys)
        )
    return lines


def summarize_trace(manifest: Dict[str, Any], records: List[Dict[str, Any]]) -> str:
    """Render one trace: manifest, span tree, counters, gauges,
    histograms, and the scheduler's chunk-boundary decisions."""
    out: List[str] = []
    out.append("manifest:")
    out.extend(f"  {line}" for line in _manifest_lines(manifest))

    spans = _span_table(records)
    if spans:
        out.append("")
        out.append("span tree (calls · wall s · cpu s):")
        width = max(
            2 * path.count("/") + len(path.rsplit("/", 1)[-1]) for path in spans
        )
        for path in _tree_order(spans):
            calls, wall, cpu = spans[path]
            depth = path.count("/")
            name = path.rsplit("/", 1)[-1]
            label = "  " * depth + name
            out.append(
                f"  {label:<{width}}  {int(calls):>6}x  {wall:>10.4f}  {cpu:>10.4f}"
            )

    counters = {r["name"]: r["value"] for r in records if r.get("type") == "counter"}
    if counters:
        out.append("")
        out.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            out.append(f"  {name:<{width}}  {_fmt_num(counters[name]):>12}")

    gauges = {r["name"]: r["value"] for r in records if r.get("type") == "gauge"}
    if gauges:
        out.append("")
        out.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            out.append(f"  {name:<{width}}  {_fmt_num(gauges[name]):>12}")

    histograms = [r for r in records if r.get("type") == "histogram"]
    if histograms:
        out.append("")
        out.append("histograms (count · mean · min · max):")
        width = max(len(r["name"]) for r in histograms)
        for record in sorted(histograms, key=lambda r: r["name"]):
            out.append(
                f"  {record['name']:<{width}}  {record['count']:>6}"
                f"  {record['mean']:>10.4g}  {record['min']:>10.4g}"
                f"  {record['max']:>10.4g}"
            )

    boundaries = [
        r
        for r in records
        if r.get("type") == "event" and r.get("name") == "scheduler.boundary"
    ]
    stops = [
        r
        for r in records
        if r.get("type") == "event" and r.get("name") == "scheduler.stop"
    ]
    if boundaries or stops:
        out.append("")
        out.append("scheduler decisions:")
        for record in boundaries:
            f = record.get("fields", {})
            verdict = "stop" if f.get("satisfied") else "continue"
            out.append(
                f"  boundary {f.get('chunk', '?')}: committed={f.get('committed', '?')}"
                f" half_width={_fmt_num(f.get('half_width', float('nan')))}"
                f" -> {verdict}"
            )
        for record in stops:
            f = record.get("fields", {})
            out.append(f"  stop: {f.get('reason', '?')}")
    return "\n".join(out)


def _diff_rows(
    a: Dict[str, Any], b: Dict[str, Any]
) -> List[Tuple[str, Any, Any]]:
    rows = []
    for name in sorted(set(a) | set(b)):
        rows.append((name, a.get(name), b.get(name)))
    return rows


def compare_traces(
    trace_a: Tuple[Dict[str, Any], List[Dict[str, Any]]],
    trace_b: Tuple[Dict[str, Any], List[Dict[str, Any]]],
    *,
    label_a: str = "A",
    label_b: str = "B",
) -> str:
    """Diff two traces: per-path wall time and per-name counter deltas."""
    manifest_a, records_a = trace_a
    manifest_b, records_b = trace_b
    out: List[str] = []
    for label, manifest in ((label_a, manifest_a), (label_b, manifest_b)):
        run = ", ".join(
            f"{key}={manifest[key]}"
            for key in ("kind", "id", "scenario_id", "experiment_id", "master_seed")
            if key in manifest
        )
        out.append(f"{label}: {run or '(no run fields)'}")

    spans_a = {p: row[1] for p, row in _span_table(records_a).items()}
    spans_b = {p: row[1] for p, row in _span_table(records_b).items()}
    rows = _diff_rows(spans_a, spans_b)
    if rows:
        out.append("")
        out.append(f"span wall s ({label_a} · {label_b} · delta):")
        width = max(len(name) for name, _, _ in rows)
        for name, va, vb in rows:
            sa = f"{va:.4f}" if va is not None else "-"
            sb = f"{vb:.4f}" if vb is not None else "-"
            delta = f"{vb - va:+.4f}" if va is not None and vb is not None else ""
            out.append(f"  {name:<{width}}  {sa:>10}  {sb:>10}  {delta:>10}")

    counters_a = {
        r["name"]: r["value"] for r in records_a if r.get("type") == "counter"
    }
    counters_b = {
        r["name"]: r["value"] for r in records_b if r.get("type") == "counter"
    }
    rows = _diff_rows(counters_a, counters_b)
    if rows:
        out.append("")
        out.append(f"counters ({label_a} · {label_b} · delta):")
        width = max(len(name) for name, _, _ in rows)
        for name, va, vb in rows:
            sa = _fmt_num(va) if va is not None else "-"
            sb = _fmt_num(vb) if vb is not None else "-"
            delta = (
                _fmt_num(vb - va) if va is not None and vb is not None else ""
            )
            if delta and not delta.startswith("-") and delta != "0":
                delta = "+" + delta
            out.append(f"  {name:<{width}}  {sa:>12}  {sb:>12}  {delta:>12}")
    return "\n".join(out)
