"""Per-run manifest: who/where/what produced a trace.

The manifest is the first line of every trace file.  This module
supplies the environment-derived base fields (host, platform,
interpreter, library versions, timestamp); run-specific fields —
scenario id, spec hash, master seed, code version, store backend —
are layered on top by the caller through
:meth:`repro.telemetry.TraceRecorder.set_manifest`.
"""

from __future__ import annotations

import os
import platform
import socket
import time
from typing import Any, Dict, Optional

__all__ = ["base_manifest"]


def base_manifest(now: Optional[float] = None) -> Dict[str, Any]:
    """Environment fields every manifest carries.

    ``now`` injects the ``created_unix`` stamp (unix seconds) so tests
    are not time-dependent — the same seam as ``store/gc.py``; the
    default is the real clock.
    """
    import numpy

    from .. import __version__
    from ..engine.backend import default_backend_name

    return {
        "created_unix": time.time() if now is None else float(now),
        "host": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro_version": __version__,
        "pid": os.getpid(),
        # Which array namespace did the arithmetic (guarantee #9):
        # manifests are snapshot at write time, inside the CLI's
        # use_backend scope, so this reflects the run's actual backend.
        "array_backend": default_backend_name(),
    }
