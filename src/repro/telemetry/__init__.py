"""repro.telemetry — spans, counters, and run manifests.

Observability substrate for the whole stack (ROADMAP #2/#4): a
hierarchical span tracer with wall/CPU timings, a metrics registry
(counters, gauges, histograms), a discrete event sink, and a per-run
manifest, all serialized as a versioned JSONL trace
(:mod:`repro.telemetry.schema`).

Design rules, in priority order:

1. **Off by default, near-free when off.**  The process-wide recorder
   defaults to :data:`NULL_RECORDER`, whose every method is a no-op
   (``benchmarks/test_bench_telemetry.py`` enforces ≤ 5% overhead on
   the Fig. 16 campaign).  Hot paths call the module-level helpers
   below unconditionally — no ``if enabled()`` litter.
2. **Telemetry never influences results.**  Nothing recorded here may
   feed back into trial execution or the store's payload encoding: a
   traced run stores byte-identical payloads to an untraced one
   (determinism guarantee #8, ``docs/architecture.md``;
   ``tests/test_telemetry.py`` pins it).
3. **Multiprocessing-deterministic.**  Pool workers record into their
   own :func:`capture` recorder and ship a snapshot back with each
   trial result; the parent merges snapshots in trial-index order, so
   the trace contents are worker-count independent.

Typical use (the CLI does all of this for ``repro run --trace``)::

    from repro import telemetry

    with telemetry.recording() as recorder:
        recorder.set_manifest(scenario_id="uniform-multilateration")
        with telemetry.span("campaign", mode="fixed"):
            telemetry.count("engine.campaign.trials", 12)
        recorder.write("trace.jsonl")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .recorder import NULL_RECORDER, NullRecorder, TraceRecorder
from .schema import (
    TRACE_SCHEMA_VERSION,
    read_trace,
    read_trace_lenient,
    validate_trace,
    write_trace,
)

__all__ = [
    "NullRecorder",
    "NULL_RECORDER",
    "TraceRecorder",
    "TRACE_SCHEMA_VERSION",
    "read_trace",
    "read_trace_lenient",
    "validate_trace",
    "write_trace",
    "current",
    "enabled",
    "set_recorder",
    "recording",
    "capture",
    "span",
    "add_span",
    "count",
    "observe",
    "gauge",
    "event",
    "set_manifest",
]

_RECORDER = NULL_RECORDER


def current():
    """The active recorder (the null recorder unless tracing is on)."""
    return _RECORDER


def enabled() -> bool:
    """True when a trace recorder is installed."""
    return _RECORDER.active


def set_recorder(recorder) -> None:
    """Install *recorder* process-wide (``None`` restores the null)."""
    global _RECORDER
    _RECORDER = NULL_RECORDER if recorder is None else recorder


@contextmanager
def recording(recorder: Optional[TraceRecorder] = None) -> Iterator[TraceRecorder]:
    """Install a :class:`TraceRecorder` for the duration of the block.

    Yields the recorder; the previous recorder is restored on exit
    (exceptions included), so nested/temporary tracing is safe.
    """
    rec = TraceRecorder() if recorder is None else recorder
    previous = _RECORDER
    set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)


@contextmanager
def capture() -> Iterator[TraceRecorder]:
    """Worker-side recording into a fresh recorder.

    Pool workers call this around each trial so their instrumentation
    lands in a private recorder whose :meth:`TraceRecorder.worker_data`
    snapshot travels back with the trial record — never in whatever
    recorder the fork start method happened to copy from the parent.
    """
    with recording(TraceRecorder()) as rec:
        yield rec


# -- module-level delegating helpers (hot-path surface) -----------------


def span(name: str, **attrs):
    """Context manager timing a nested phase on the active recorder."""
    return _RECORDER.span(name, **attrs)


def add_span(name, wall_s, cpu_s, *, under=None, **attrs) -> None:
    """Record an externally timed span on the active recorder."""
    _RECORDER.add_span(name, wall_s, cpu_s, under=under, **attrs)


def count(name: str, value=1) -> None:
    """Add to a monotonic counter on the active recorder."""
    _RECORDER.count(name, value)


def observe(name: str, value) -> None:
    """Record a histogram observation on the active recorder."""
    _RECORDER.observe(name, value)


def gauge(name: str, value) -> None:
    """Set a gauge on the active recorder."""
    _RECORDER.gauge(name, value)


def event(name: str, **fields) -> None:
    """Record a discrete event on the active recorder."""
    _RECORDER.event(name, **fields)


def set_manifest(**fields) -> None:
    """Merge fields into the active recorder's run manifest."""
    _RECORDER.set_manifest(**fields)
