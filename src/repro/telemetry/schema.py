"""The versioned JSONL trace schema: validation, reading, writing.

A trace is a JSON-Lines file.  Line 1 is the run **manifest** (record
type ``manifest``), which carries ``schema`` — the integer schema
version this file was written with.  Every subsequent line is one
record of type ``span``, ``counter``, ``gauge``, ``histogram``, or
``event``.  Records may carry *extra* keys beyond those required here
(forward-compatible minor additions); readers must reject files whose
``schema`` they do not know.

Validation is hand-rolled (no external JSON-schema dependency) and
raises :class:`repro.errors.ValidationError` with the offending line
number, so both the test suite and the CI gate
(``tools/check_trace_schema.py``) share one checker.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Tuple

from ..errors import ValidationError

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "RECORD_TYPES",
    "validate_record",
    "validate_trace",
    "read_trace",
    "read_trace_lenient",
    "write_trace",
]

#: Bump on any backward-incompatible change to record shapes.
TRACE_SCHEMA_VERSION = 1

RECORD_TYPES = ("manifest", "span", "counter", "gauge", "histogram", "event")

_NUMBER = (int, float)


def _require(record: Dict[str, Any], field: str, types, where: str) -> Any:
    if field not in record:
        raise ValidationError(f"{where}: missing required field {field!r}")
    value = record[field]
    if isinstance(value, bool) and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        raise ValidationError(f"{where}: field {field!r} must not be a bool")
    if not isinstance(value, types):
        raise ValidationError(
            f"{where}: field {field!r} has type {type(value).__name__}"
        )
    return value


def validate_record(record: Any, line_no: int = 0) -> None:
    """Check one parsed trace record; raise ValidationError if invalid."""
    where = f"trace line {line_no}" if line_no else "trace record"
    if not isinstance(record, dict):
        raise ValidationError(f"{where}: record must be a JSON object")
    rtype = record.get("type")
    if rtype not in RECORD_TYPES:
        raise ValidationError(
            f"{where}: unknown record type {rtype!r} "
            f"(expected one of {', '.join(RECORD_TYPES)})"
        )
    if rtype == "manifest":
        _require(record, "schema", int, where)
        _require(record, "created_unix", _NUMBER, where)
        _require(record, "host", str, where)
        _require(record, "repro_version", str, where)
    elif rtype == "span":
        name = _require(record, "name", str, where)
        path = _require(record, "path", str, where)
        if not name or not path:
            raise ValidationError(f"{where}: span name/path must be non-empty")
        if not path.endswith(name):
            raise ValidationError(f"{where}: span path must end with its name")
        for field in ("wall_s", "cpu_s"):
            if _require(record, field, _NUMBER, where) < 0:
                raise ValidationError(f"{where}: span {field} must be >= 0")
        _require(record, "seq", int, where)
        attrs = _require(record, "attrs", dict, where)
        if any(not isinstance(k, str) for k in attrs):
            raise ValidationError(f"{where}: span attr keys must be strings")
    elif rtype in ("counter", "gauge"):
        if not _require(record, "name", str, where):
            raise ValidationError(f"{where}: {rtype} name must be non-empty")
        _require(record, "value", _NUMBER, where)
    elif rtype == "histogram":
        if not _require(record, "name", str, where):
            raise ValidationError(f"{where}: histogram name must be non-empty")
        if _require(record, "count", int, where) < 1:
            raise ValidationError(f"{where}: histogram count must be >= 1")
        for field in ("sum", "min", "max", "mean"):
            _require(record, field, _NUMBER, where)
    elif rtype == "event":
        if not _require(record, "name", str, where):
            raise ValidationError(f"{where}: event name must be non-empty")
        _require(record, "path", str, where)
        _require(record, "seq", int, where)
        _require(record, "fields", dict, where)


def validate_trace(records: List[Dict[str, Any]]) -> None:
    """Check a full parsed trace: per-record shapes plus file layout."""
    if not records:
        raise ValidationError("trace is empty (expected a manifest line)")
    for i, record in enumerate(records):
        validate_record(record, line_no=i + 1)
    if records[0].get("type") != "manifest":
        raise ValidationError("trace line 1: first record must be the manifest")
    manifests = [r for r in records if r.get("type") == "manifest"]
    if len(manifests) > 1:
        raise ValidationError("trace contains more than one manifest record")
    schema = manifests[0]["schema"]
    if schema != TRACE_SCHEMA_VERSION:
        raise ValidationError(
            f"trace schema version {schema} is not supported "
            f"(this build reads version {TRACE_SCHEMA_VERSION})"
        )


def read_trace(path) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Parse and validate a JSONL trace.

    Returns ``(manifest, records)`` where *records* excludes the
    manifest line.  Raises :class:`ValidationError` on malformed JSON,
    invalid records, or an unsupported schema version.
    """
    manifest, records, _ = _read_trace(path, drop_truncated_tail=False)
    return manifest, records


def read_trace_lenient(
    path,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], List[str]]:
    """Like :func:`read_trace`, but tolerate a crashed-writer tail.

    A process that dies mid-write leaves its *final* JSONL line
    truncated; strict reading would reject the whole file over bytes
    that carry no information.  This variant drops an unparseable final
    line and reports it in the returned warnings list, so inspection
    tools (``repro trace summarize``/``compare``/``export``) can render
    everything readable.  Malformed JSON anywhere *before* the final
    line is still an error — that is corruption, not truncation — and
    the surviving records must still pass full schema validation.

    Returns ``(manifest, records, warnings)``.
    """
    return _read_trace(path, drop_truncated_tail=True)


def _read_trace(
    path, *, drop_truncated_tail: bool
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], List[str]]:
    if not os.path.exists(path):
        raise ValidationError(f"trace file not found: {path}")
    records: List[Dict[str, Any]] = []
    warnings: List[str] = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = [
            (line_no, text.strip())
            for line_no, text in enumerate(fh, start=1)
            if text.strip()
        ]
    for i, (line_no, line) in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if drop_truncated_tail and i == len(lines) - 1:
                warnings.append(
                    f"trace line {line_no} is truncated mid-record (crashed "
                    f"writer?); dropped it and kept the {len(records)} "
                    f"readable records"
                )
                break
            raise ValidationError(
                f"trace line {line_no}: malformed JSON ({exc.msg})"
            ) from exc
    validate_trace(records)
    return records[0], records[1:], warnings


def write_trace(path, records: List[Dict[str, Any]]) -> None:
    """Write records as JSONL (one compact JSON object per line)."""
    # allow_nan: half-widths may legitimately be Infinity before the
    # first boundary with enough samples; json.loads round-trips it.
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True, allow_nan=True))
            fh.write("\n")
