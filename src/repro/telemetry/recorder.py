"""Recorder objects: the null default and the in-memory trace recorder.

Two recorder implementations share one duck-typed surface:

- :class:`NullRecorder` — the process-wide default.  Every method is a
  no-op and ``span()`` returns a shared stateless context manager, so
  instrumentation left in hot paths costs one attribute lookup and one
  call when tracing is off (``benchmarks/test_bench_telemetry.py``
  enforces the ceiling).
- :class:`TraceRecorder` — accumulates spans, counters, gauges,
  histogram observations, and events in memory, then serializes them to
  a JSONL trace (see :mod:`repro.telemetry.schema`).

Recorders are process-local and not thread-safe; the engine's
parallelism is process-based (``multiprocessing``), and workers record
into their own capture recorder (:func:`repro.telemetry.capture`) whose
snapshot the parent merges deterministically in trial-index order
(:meth:`TraceRecorder.merge_worker`).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = ["NullRecorder", "NULL_RECORDER", "TraceRecorder"]


def _scrub(value: Any) -> Any:
    """Coerce attribute/field values to plain JSON-serializable types.

    NumPy scalars (and anything else numeric) come through ``float`` /
    ``int``; unknown objects fall back to ``str``.  Keeps trace writing
    independent of what callers happen to pass.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _scrub(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_scrub(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return _scrub(value.item())
    return str(value)


class _NullSpan:
    """Stateless context manager returned by :meth:`NullRecorder.span`."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    ``active`` is the one attribute instrumented code may branch on to
    skip work whose *inputs* are expensive to compute (e.g. utilization
    math); plain ``count``/``observe``/``span`` calls need no guard.
    """

    active = False

    __slots__ = ()

    def span(self, name, **attrs):
        return _NULL_SPAN

    def add_span(self, name, wall_s, cpu_s, *, under=None, **attrs):
        pass

    def count(self, name, value=1):
        pass

    def observe(self, name, value):
        pass

    def gauge(self, name, value):
        pass

    def event(self, name, **fields):
        pass

    def set_manifest(self, **fields):
        pass

    def merge_worker(self, data, *, under=None):
        pass

    def current_path(self) -> str:
        return ""


NULL_RECORDER = NullRecorder()


class _Span:
    """Live span context manager; records itself on exit."""

    __slots__ = ("_recorder", "_name", "_attrs", "_wall0", "_cpu0")

    def __init__(self, recorder: "TraceRecorder", name: str, attrs: Dict[str, Any]):
        self._recorder = recorder
        self._name = name
        self._attrs = attrs

    def __enter__(self):
        self._recorder._stack.append(self._name)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info):
        wall_s = time.perf_counter() - self._wall0
        cpu_s = time.process_time() - self._cpu0
        rec = self._recorder
        path = "/".join(rec._stack)
        rec._stack.pop()
        rec._record_span(self._name, path, wall_s, cpu_s, self._attrs)
        return False


class TraceRecorder:
    """In-memory telemetry accumulator with JSONL serialization.

    Spans nest through a path stack (``campaign/chunk/solve``); counters
    sum, gauges keep their last value, histograms keep raw observations
    (summarized at write time), events keep insertion order.  A global
    ``seq`` orders spans and events for deterministic replay.
    """

    active = True

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, List[float]] = {}
        self.events: List[Dict[str, Any]] = []
        self.spans: List[Dict[str, Any]] = []
        self.manifest: Dict[str, Any] = {}
        #: Total instrumentation calls routed through this recorder —
        #: the disabled-overhead benchmark multiplies this by the
        #: measured null-path per-call cost.
        self.instrumentation_calls = 0
        self._stack: List[str] = []
        self._seq = 0

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attrs) -> _Span:
        """Context manager timing a nested phase (wall + CPU seconds)."""
        self.instrumentation_calls += 1
        return _Span(self, name, attrs)

    def add_span(self, name, wall_s, cpu_s, *, under=None, **attrs) -> None:
        """Record an externally timed span.

        *under* overrides the parent path (default: the current span
        stack) — used where the timed region does not nest lexically,
        e.g. streamed scheduler chunks.
        """
        self.instrumentation_calls += 1
        base = self.current_path() if under is None else under
        path = f"{base}/{name}" if base else name
        self._record_span(name, path, float(wall_s), float(cpu_s), attrs)

    def _record_span(self, name, path, wall_s, cpu_s, attrs) -> None:
        self.spans.append(
            {
                "type": "span",
                "name": name,
                "path": path,
                "wall_s": max(0.0, float(wall_s)),
                "cpu_s": max(0.0, float(cpu_s)),
                "attrs": _scrub(attrs),
                "seq": self._next_seq(),
            }
        )

    def count(self, name: str, value=1) -> None:
        """Add *value* to the named monotonic counter."""
        self.instrumentation_calls += 1
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value) -> None:
        """Record one observation into the named histogram."""
        self.instrumentation_calls += 1
        self.histograms.setdefault(name, []).append(float(value))

    def gauge(self, name: str, value) -> None:
        """Set the named gauge to its latest value."""
        self.instrumentation_calls += 1
        self.gauges[name] = float(value)

    def event(self, name: str, **fields) -> None:
        """Record a discrete event at the current span path."""
        self.instrumentation_calls += 1
        self.events.append(
            {
                "type": "event",
                "name": name,
                "path": self.current_path(),
                "fields": _scrub(fields),
                "seq": self._next_seq(),
            }
        )

    def set_manifest(self, **fields) -> None:
        """Merge fields into the run manifest (first trace line)."""
        self.instrumentation_calls += 1
        self.manifest.update(_scrub(fields))

    def current_path(self) -> str:
        return "/".join(self._stack)

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    # -- worker aggregation --------------------------------------------

    def worker_data(self) -> Dict[str, Any]:
        """Snapshot for shipping back to the parent process.

        ``busy_s`` is the wall time of the worker's root spans — the
        parent uses it for utilization accounting.
        """
        busy = sum(s["wall_s"] for s in self.spans if "/" not in s["path"])
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: list(v) for k, v in self.histograms.items()},
            "spans": list(self.spans),
            "events": list(self.events),
            "busy_s": busy,
        }

    def merge_worker(self, data: Dict[str, Any], *, under: Optional[str] = None) -> None:
        """Fold one worker snapshot into this recorder.

        Counters sum, gauges take the worker's last value, histogram
        observations extend, and spans/events re-root beneath *under*
        (default: the current span path) with fresh parent-side ``seq``
        numbers.  Merging snapshots in trial-index order therefore
        yields the same trace whatever the worker count — the telemetry
        analogue of determinism guarantee #2.
        """
        for name, value in data.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in data.get("gauges", {}).items():
            self.gauges[name] = value
        for name, values in data.get("histograms", {}).items():
            self.histograms.setdefault(name, []).extend(values)
        prefix = self.current_path() if under is None else under
        for span in data.get("spans", []):
            span = dict(span)
            span["path"] = f"{prefix}/{span['path']}" if prefix else span["path"]
            span["seq"] = self._next_seq()
            self.spans.append(span)
        for event in data.get("events", []):
            event = dict(event)
            epath = event.get("path", "")
            if prefix:
                event["path"] = f"{prefix}/{epath}" if epath else prefix
            event["seq"] = self._next_seq()
            self.events.append(event)

    # -- serialization -------------------------------------------------

    def records(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """All trace records, manifest first (see the schema module).

        ``now`` threads through to :func:`base_manifest` so tests can
        pin the manifest's ``created_unix`` stamp.
        """
        from .manifest import base_manifest
        from .schema import TRACE_SCHEMA_VERSION

        manifest = base_manifest(now=now)
        manifest.update(self.manifest)
        manifest["type"] = "manifest"
        manifest["schema"] = TRACE_SCHEMA_VERSION
        out: List[Dict[str, Any]] = [manifest]
        out.extend(sorted(self.spans, key=lambda s: s["seq"]))
        for name in sorted(self.counters):
            # _scrub: counter increments keep caller types (ints stay
            # exact), so numpy integers may survive to emission time.
            out.append(
                {"type": "counter", "name": name, "value": _scrub(self.counters[name])}
            )
        for name in sorted(self.gauges):
            out.append({"type": "gauge", "name": name, "value": self.gauges[name]})
        for name in sorted(self.histograms):
            values = self.histograms[name]
            out.append(
                {
                    "type": "histogram",
                    "name": name,
                    "count": len(values),
                    "sum": sum(values),
                    "min": min(values),
                    "max": max(values),
                    "mean": sum(values) / len(values),
                }
            )
        out.extend(sorted(self.events, key=lambda e: e["seq"]))
        return out

    def write(self, path, now: Optional[float] = None) -> int:
        """Write the JSONL trace to *path*; returns the record count."""
        from .schema import write_trace

        records = self.records(now=now)
        write_trace(path, records)
        return len(records)
