"""Canonical JSON rendering and hashing shared by specs and the store.

Both the scenario layer (:mod:`repro.scenarios`) and the content-
addressed result store (:mod:`repro.store`) need the same guarantee: a
nested dict of plain values always renders to the *same* byte string, on
any platform, in any process.  ``json.dumps`` with sorted keys and no
whitespace provides it — Python renders floats with ``repr`` (the
shortest string that round-trips), so equal floats serialize
identically and deserialize bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_json", "sha256_hex"]


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, native floats."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=True)


def sha256_hex(text: str) -> str:
    """SHA-256 hex digest of *text* (UTF-8)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
