"""Declarative scenario specifications with canonical, stable hashing.

A *scenario* is a complete, self-contained description of one Monte-Carlo
workload: how nodes are deployed, which become anchors, how ranges are
measured (and with what noise), and which localization algorithm runs on
the result.  Scenarios are frozen dataclasses, so they are hashable,
picklable, and comparable; campaigns, sweeps, and the content-addressed
result store (:mod:`repro.store`) all key off them.

Spec hashing
------------
:meth:`ScenarioSpec.spec_hash` is the content address of a scenario: the
SHA-256 of the spec's *canonical JSON* — the nested field dict with keys
sorted, floats rendered by Python's shortest round-trip ``repr`` (the
``json`` module's native float format), and the cosmetic ``scenario_id``
excluded.  Two specs that describe the same physics hash identically even
if they were registered under different names; changing any physical
parameter (a noise sigma, an anchor fraction, a solver knob, the trial
count) changes the hash.  The hash is stable across processes and
platforms because it never touches Python's randomized ``hash()``.

Sweeps
------
:meth:`ScenarioSpec.grid` expands one base spec into the cross product of
dotted-path parameter axes::

    spec.grid({"deployment.n_nodes": [25, 49],
               "ranging.sigma_m": [0.1, 0.33]})

yields four concrete specs whose ids record their coordinates, ready to
feed the campaign scheduler one by one.

Paper mapping
-------------
The spec fields parameterize the paper's evaluation directly:
:class:`DeploymentSpec` covers its geometries ("paper-grid" is the
offset grass grid of Figures 13-19, "town"/"uniform" the randomized
fields of Figures 20-22, "parking-lot" the small-scale Figure 12
layout); :class:`RangingSpec` selects between the full signal-level
acoustic campaign of Section 3 and the synthetic Gaussian extension
model; and :class:`SolverSpec` names the algorithms of Section 4 —
"multilateration" (4.1), "lss" (4.2), "distributed-lss" (4.3,
Figures 24/25), and the "dv-hop" baseline of Section 2.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from .._canonical import canonical_json, sha256_hex
from ..errors import ValidationError

__all__ = [
    "DeploymentSpec",
    "AnchorSpec",
    "RangingSpec",
    "SolverSpec",
    "ScenarioSpec",
    "HASH_EXCLUDED_FIELDS",
    "expand_grid",
]

#: Every field :meth:`ScenarioSpec.canonical` strips before hashing, as
#: dotted paths into the nested payload.  This is a cross-module
#: contract: the content-addressed store, shard keys, and every golden
#: pin assume exactly these fields are cosmetic.  The lint rule RPL006
#: cross-checks this registry against the pops in ``canonical()`` so
#: neither side can drift alone.
HASH_EXCLUDED_FIELDS = (
    "scenario_id",
    "solver.array_backend",
)

#: Deployment generators a :class:`DeploymentSpec` may name.
DEPLOYMENT_KINDS = ("uniform", "grid", "paper-grid", "town", "parking-lot")

#: Anchor selection strategies (see :mod:`repro.deploy.anchors`).
ANCHOR_STRATEGIES = ("random", "spread", "boundary", "none")

#: Range measurement models: direct Gaussian synthetic ranges, or the
#: full signal-level acoustic ranging campaign of Section 3.
RANGING_MODELS = ("gaussian", "acoustic")

#: Localization algorithms a :class:`SolverSpec` may name.
ALGORITHMS = ("multilateration", "lss", "distributed-lss", "dv-hop")

#: Algorithms that run without anchors (relative-coordinate output).
ANCHOR_FREE_ALGORITHMS = ("lss", "distributed-lss")


@dataclass(frozen=True)
class DeploymentSpec:
    """Where the nodes are.

    ``kind`` selects the generator: "uniform" rejection-samples a
    ``width_m x height_m`` field with ``min_separation_m`` spacing,
    "grid" is a plain square grid (``n_nodes`` must be a perfect
    square), "paper-grid" is the paper's 7x7 offset grid minus failed
    nodes, "town" places nodes along the streets of a block grid, and
    "parking-lot" is the small-scale 25x25 m experiment's layout.
    """

    kind: str = "uniform"
    n_nodes: int = 36
    width_m: float = 60.0
    height_m: float = 60.0
    min_separation_m: float = 4.0
    spacing_m: float = 10.0

    def __post_init__(self):
        if self.kind not in DEPLOYMENT_KINDS:
            raise ValidationError(
                f"unknown deployment kind {self.kind!r}; known: {DEPLOYMENT_KINDS}"
            )
        if self.n_nodes < 1:
            raise ValidationError("n_nodes must be >= 1")
        if self.kind == "grid":
            side = int(round(self.n_nodes ** 0.5))
            if side * side != self.n_nodes:
                raise ValidationError(
                    f"grid deployments need a square n_nodes; got {self.n_nodes}"
                )
        if self.kind == "paper-grid" and self.n_nodes > 49:
            raise ValidationError("paper-grid supports at most 49 nodes")


@dataclass(frozen=True)
class AnchorSpec:
    """Which nodes know their position a priori.

    Exactly one of ``fraction`` (of ``n_nodes``, rounded) or ``count``
    must be given unless ``strategy`` is "none" (anchor-free, e.g. LSS).
    """

    strategy: str = "random"
    fraction: Optional[float] = None
    count: Optional[int] = None

    def __post_init__(self):
        if self.strategy not in ANCHOR_STRATEGIES:
            raise ValidationError(
                f"unknown anchor strategy {self.strategy!r}; known: {ANCHOR_STRATEGIES}"
            )
        if self.strategy == "none":
            if self.fraction is not None or self.count is not None:
                raise ValidationError(
                    "anchor-free scenarios must leave fraction and count unset"
                )
            return
        if (self.fraction is None) == (self.count is None):
            raise ValidationError("set exactly one of fraction or count")
        if self.fraction is not None and not 0.0 < self.fraction <= 1.0:
            raise ValidationError("anchor fraction must be in (0, 1]")
        if self.count is not None and self.count < 1:
            raise ValidationError("anchor count must be >= 1")

    def n_anchors(self, n_nodes: int) -> int:
        """Concrete anchor count for a deployment of *n_nodes*."""
        if self.strategy == "none":
            return 0
        if self.count is not None:
            return min(int(self.count), n_nodes)
        return max(1, min(n_nodes, int(round(self.fraction * n_nodes))))


@dataclass(frozen=True)
class RangingSpec:
    """How inter-node distances are measured.

    "gaussian" draws ``N(0, sigma_m)`` errors on every pair within
    ``max_range_m`` — the paper's synthetic-extension model.  "acoustic"
    runs the full signal-level ranging campaign (calibrated service,
    per-link hardware/echo draws, ``rounds`` chirp rounds, triangle
    filtering) in the named acoustic ``environment``.
    """

    model: str = "gaussian"
    max_range_m: float = 22.0
    sigma_m: float = 0.33
    environment: str = "grass"
    rounds: int = 3

    def __post_init__(self):
        if self.model not in RANGING_MODELS:
            raise ValidationError(
                f"unknown ranging model {self.model!r}; known: {RANGING_MODELS}"
            )
        if self.max_range_m <= 0:
            raise ValidationError("max_range_m must be positive")
        if self.sigma_m < 0:
            raise ValidationError("sigma_m must be non-negative")
        if self.rounds < 1:
            raise ValidationError("rounds must be >= 1")


@dataclass(frozen=True)
class SolverSpec:
    """Which localization algorithm runs, and how.

    ``backend`` is normalized per algorithm at construction ("dv-hop"
    maps the generic "gradient" default to its native "lm" solver;
    "distributed-lss" maps it to the engine's "batched" path, with
    "scalar" selecting the per-problem reference), so two specs
    describing the same physics always hash identically.

    ``array_backend`` picks the array namespace the engine kernels
    compute with (:mod:`repro.engine.backend`; ``None`` defers to the
    process default).  It is an *execution* knob like ``workers`` —
    never physics — so it is excluded from the canonical form and the
    spec hash: a CuPy run and a NumPy run of the same scenario share
    one store entry (tolerance-parity results, guarantee #9).
    """

    algorithm: str = "multilateration"
    backend: str = "gradient"
    min_spacing_m: Optional[float] = None
    constraint_weight: float = 10.0
    restarts: int = 4
    max_epochs: int = 800
    array_backend: Optional[str] = None

    def __post_init__(self):
        if self.algorithm not in ALGORITHMS:
            raise ValidationError(
                f"unknown algorithm {self.algorithm!r}; known: {ALGORITHMS}"
            )
        if self.algorithm == "dv-hop" and self.backend == "gradient":
            object.__setattr__(self, "backend", "lm")
        if self.algorithm == "distributed-lss":
            if self.backend == "gradient":
                object.__setattr__(self, "backend", "batched")
            if self.backend not in ("batched", "scalar"):
                raise ValidationError(
                    "distributed-lss backend must be 'batched' or 'scalar'; "
                    f"got {self.backend!r}"
                )
        if self.restarts < 1:
            raise ValidationError("restarts must be >= 1")
        if self.max_epochs < 1:
            raise ValidationError("max_epochs must be >= 1")
        if self.array_backend is not None:
            from ..engine.backend import BACKEND_NAMES

            if self.array_backend not in BACKEND_NAMES:
                raise ValidationError(
                    f"array_backend must be one of {BACKEND_NAMES} or None; "
                    f"got {self.array_backend!r}"
                )


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete Monte-Carlo workload description.

    ``scenario_id`` is cosmetic (registry name, sweep coordinates) and
    excluded from :meth:`spec_hash`; everything else is physics and
    participates in the content address.
    """

    scenario_id: str
    deployment: DeploymentSpec = field(default_factory=DeploymentSpec)
    anchors: AnchorSpec = field(default_factory=lambda: AnchorSpec(fraction=0.25))
    ranging: RangingSpec = field(default_factory=RangingSpec)
    solver: SolverSpec = field(default_factory=SolverSpec)
    n_trials: int = 32
    target_metric: str = "mean_error_m"

    def __post_init__(self):
        if not self.scenario_id:
            raise ValidationError("scenario_id must be non-empty")
        if self.n_trials < 1:
            raise ValidationError("n_trials must be >= 1")
        anchor_free = self.solver.algorithm in ANCHOR_FREE_ALGORITHMS
        if anchor_free and self.anchors.strategy != "none":
            raise ValidationError(
                f"{self.solver.algorithm} scenarios are anchor-free; "
                "use strategy='none'"
            )
        if not anchor_free and self.anchors.strategy == "none":
            raise ValidationError(
                f"{self.solver.algorithm} scenarios need anchors; got strategy='none'"
            )

    # ------------------------------------------------------------------
    # Canonical form and hashing
    # ------------------------------------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """Nested plain-dict form with the cosmetic id stripped.

        ``solver.array_backend`` is stripped too: like worker count it
        only chooses *where* the arithmetic runs, so it must not move
        the content address (store entries and shard keys stay shared
        across backends).
        """
        payload = dataclasses.asdict(self)
        payload.pop("scenario_id")
        payload["solver"].pop("array_backend")
        return payload

    def canonical_json(self) -> str:
        """Deterministic JSON rendering of :meth:`canonical`."""
        return canonical_json(self.canonical())

    def spec_hash(self) -> str:
        """SHA-256 hex digest of the canonical JSON (the content address)."""
        return sha256_hex(self.canonical_json())

    # ------------------------------------------------------------------
    # Derived / override helpers
    # ------------------------------------------------------------------

    def with_overrides(self, **dotted: Any) -> "ScenarioSpec":
        """Copy with dotted-path overrides, e.g.
        ``spec.with_overrides(**{"ranging.sigma_m": 0.1, "n_trials": 8})``."""
        out = self
        for path, value in dotted.items():
            out = _replace_path(out, path, value)
        return out

    def grid(self, axes: Mapping[str, Sequence[Any]]) -> Tuple["ScenarioSpec", ...]:
        """Expand into the cross product of dotted-path parameter *axes*.

        Axis order follows the mapping's insertion order; each produced
        spec's id is the base id plus its axis coordinates, e.g.
        ``"base/deployment.n_nodes=25,ranging.sigma_m=0.1"``.
        """
        return expand_grid(self, axes)


def expand_grid(
    base: ScenarioSpec, axes: Mapping[str, Sequence[Any]]
) -> Tuple[ScenarioSpec, ...]:
    """Cross-product sweep expansion (see :meth:`ScenarioSpec.grid`)."""
    if not axes:
        return (base,)
    names = list(axes)
    for name, values in axes.items():
        if not isinstance(values, (list, tuple)):
            raise ValidationError(f"axis {name!r} must be a list/tuple of values")
        if len(values) == 0:
            raise ValidationError(f"axis {name!r} is empty")
    specs = []
    for combo in itertools.product(*(axes[name] for name in names)):
        spec = base
        for name, value in zip(names, combo):
            spec = _replace_path(spec, name, value)
        coords = ",".join(f"{n}={_coord_str(v)}" for n, v in zip(names, combo))
        spec = dataclasses.replace(spec, scenario_id=f"{base.scenario_id}/{coords}")
        specs.append(spec)
    return tuple(specs)


def _coord_str(value: Any) -> str:
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


def _replace_path(obj, path: str, value):
    """``dataclasses.replace`` through a dotted field path."""
    head, _, rest = path.partition(".")
    if not hasattr(obj, head):
        raise ValidationError(
            f"unknown spec field {head!r} on {type(obj).__name__}"
        )
    if rest:
        value = _replace_path(getattr(obj, head), rest, value)
    try:
        return dataclasses.replace(obj, **{head: value})
    except TypeError as exc:  # pragma: no cover - defensive
        raise ValidationError(str(exc)) from None
