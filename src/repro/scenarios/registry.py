"""Named scenario registry.

Mirrors the experiment registry in :mod:`repro.experiments.base`: every
workload the library ships is registered here by id, so campaigns can be
launched by name (``python -m repro run town-multilateration``), swept
(:func:`repro.scenarios.expand_grid`), and cached by content address.

The built-ins cover the paper's evaluation geometries (the offset grass
grid, the random town) plus the synthetic workload family the scaling
roadmap calls for: density extremes, noise extremes, anchor-starved and
anchor-rich regimes, anchor-free centralized LSS, the distributed-LSS
pipeline (Section 4.3) on towns and grids, the DV-hop baseline, and the
full signal-level acoustic campaigns on several ground covers.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ValidationError
from .spec import AnchorSpec, DeploymentSpec, RangingSpec, ScenarioSpec, SolverSpec

__all__ = ["register_scenario", "get_scenario", "all_scenarios"]

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add *spec* to the registry under its ``scenario_id``."""
    if spec.scenario_id in _REGISTRY:
        raise ValidationError(f"scenario {spec.scenario_id!r} already registered")
    _REGISTRY[spec.scenario_id] = spec
    return spec


def get_scenario(scenario_id: str) -> ScenarioSpec:
    """Look up a scenario by id; raises KeyError listing the known ids."""
    try:
        return _REGISTRY[scenario_id]
    except KeyError:
        raise KeyError(
            f"unknown scenario {scenario_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_scenarios() -> Dict[str, ScenarioSpec]:
    """The full id -> spec registry (copy)."""
    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------

#: The ext-campaign workload: Fig. 20's shape as a distribution — uniform
#: random 36-node fields, 10 random anchors, synthetic N(0, 0.33) ranges.
register_scenario(
    ScenarioSpec(
        scenario_id="uniform-multilateration",
        deployment=DeploymentSpec(kind="uniform", n_nodes=36),
        anchors=AnchorSpec(strategy="random", count=10),
        ranging=RangingSpec(model="gaussian", max_range_m=22.0, sigma_m=0.33),
        solver=SolverSpec(algorithm="multilateration"),
        n_trials=12,
    )
)

#: Random street-grid towns, re-randomized per trial (Fig. 20's
#: generator turned into a population).
register_scenario(
    ScenarioSpec(
        scenario_id="town-multilateration",
        deployment=DeploymentSpec(kind="town", n_nodes=59, min_separation_m=6.0),
        anchors=AnchorSpec(strategy="random", count=18),
        ranging=RangingSpec(model="gaussian", max_range_m=22.0, sigma_m=0.33),
        solver=SolverSpec(algorithm="multilateration"),
        n_trials=16,
    )
)

#: Anchor-free centralized LSS on random towns (Fig. 21's shape).
register_scenario(
    ScenarioSpec(
        scenario_id="town-lss",
        deployment=DeploymentSpec(kind="town", n_nodes=25, min_separation_m=6.0),
        anchors=AnchorSpec(strategy="none"),
        ranging=RangingSpec(model="gaussian", max_range_m=22.0, sigma_m=0.33),
        solver=SolverSpec(
            algorithm="lss", min_spacing_m=6.0, restarts=4, max_epochs=800
        ),
        n_trials=8,
    )
)

#: Distributed LSS on random street-grid towns (Section 4.3 run as a
#: population): per-node local maps through the engine's stacked
#: kernels, stitched with batched rigid transforms, flooded from the
#: node nearest the deployment centroid.
register_scenario(
    ScenarioSpec(
        scenario_id="town-distributed-lss",
        deployment=DeploymentSpec(kind="town", n_nodes=49, min_separation_m=6.0),
        anchors=AnchorSpec(strategy="none"),
        ranging=RangingSpec(model="gaussian", max_range_m=22.0, sigma_m=0.33),
        solver=SolverSpec(
            algorithm="distributed-lss", min_spacing_m=6.0, restarts=3, max_epochs=400
        ),
        n_trials=8,
    )
)

#: The distributed pipeline's easy regime: a regular grid dense enough
#: that every local map is well-conditioned (the Fig. 25 recovery
#: story, synthetic-range edition).
register_scenario(
    ScenarioSpec(
        scenario_id="grid-distributed-lss",
        deployment=DeploymentSpec(kind="grid", n_nodes=36, spacing_m=10.0),
        anchors=AnchorSpec(strategy="none"),
        ranging=RangingSpec(model="gaussian", max_range_m=16.0, sigma_m=0.33),
        solver=SolverSpec(
            algorithm="distributed-lss", min_spacing_m=10.0, restarts=3, max_epochs=400
        ),
        n_trials=8,
    )
)

#: Anchor-starved sparse regime: short radio range, few anchors — the
#: Fig. 14 failure mode as a population statistic.
register_scenario(
    ScenarioSpec(
        scenario_id="uniform-sparse-multilateration",
        deployment=DeploymentSpec(kind="uniform", n_nodes=36),
        anchors=AnchorSpec(strategy="random", fraction=0.1),
        ranging=RangingSpec(model="gaussian", max_range_m=14.0, sigma_m=0.33),
        solver=SolverSpec(algorithm="multilateration"),
        n_trials=16,
    )
)

#: Anchor-rich dense regime: the easy end of the coverage spectrum.
register_scenario(
    ScenarioSpec(
        scenario_id="uniform-dense-multilateration",
        deployment=DeploymentSpec(kind="uniform", n_nodes=64, width_m=70.0, height_m=70.0),
        anchors=AnchorSpec(strategy="random", fraction=0.3),
        ranging=RangingSpec(model="gaussian", max_range_m=22.0, sigma_m=0.33),
        solver=SolverSpec(algorithm="multilateration"),
        n_trials=12,
    )
)

#: High measurement noise (3x the paper's sigma): accuracy stress test.
register_scenario(
    ScenarioSpec(
        scenario_id="uniform-noisy-multilateration",
        deployment=DeploymentSpec(kind="uniform", n_nodes=36),
        anchors=AnchorSpec(strategy="random", fraction=0.25),
        ranging=RangingSpec(model="gaussian", max_range_m=22.0, sigma_m=1.0),
        solver=SolverSpec(algorithm="multilateration"),
        n_trials=16,
    )
)

#: The paper's offset grass grid with spread anchors and clean synthetic
#: ranges — the Fig. 16 recovery regime.
register_scenario(
    ScenarioSpec(
        scenario_id="paper-grid-multilateration",
        deployment=DeploymentSpec(kind="paper-grid", n_nodes=47),
        anchors=AnchorSpec(strategy="spread", count=13),
        ranging=RangingSpec(model="gaussian", max_range_m=22.0, sigma_m=0.33),
        solver=SolverSpec(algorithm="multilateration"),
        n_trials=8,
    )
)

#: DV-hop baseline on uniform fields (Section 2's APS family).
register_scenario(
    ScenarioSpec(
        scenario_id="uniform-dv-hop",
        deployment=DeploymentSpec(kind="uniform", n_nodes=36),
        anchors=AnchorSpec(strategy="random", count=8),
        ranging=RangingSpec(model="gaussian", max_range_m=14.0, sigma_m=0.33),
        solver=SolverSpec(algorithm="dv-hop", backend="lm"),
        n_trials=12,
    )
)

#: Full signal-level acoustic ranging campaign on a small grass grid —
#: the heavyweight end-to-end workload the store exists to memoize.
register_scenario(
    ScenarioSpec(
        scenario_id="acoustic-grass-grid",
        deployment=DeploymentSpec(kind="grid", n_nodes=16, spacing_m=8.0),
        anchors=AnchorSpec(strategy="spread", count=5),
        ranging=RangingSpec(model="acoustic", environment="grass", max_range_m=25.0, rounds=3),
        solver=SolverSpec(algorithm="multilateration"),
        n_trials=4,
    )
)

#: The same acoustic campaign on the reverberant urban preset: echoes
#: and a higher noise floor instead of grass's heavy attenuation.
register_scenario(
    ScenarioSpec(
        scenario_id="acoustic-urban-grid",
        deployment=DeploymentSpec(kind="grid", n_nodes=16, spacing_m=8.0),
        anchors=AnchorSpec(strategy="spread", count=5),
        ranging=RangingSpec(model="acoustic", environment="urban", max_range_m=25.0, rounds=3),
        solver=SolverSpec(algorithm="multilateration"),
        n_trials=4,
    )
)
