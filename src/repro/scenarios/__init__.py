"""repro.scenarios — the declarative workload layer.

Scenarios describe *what* to simulate (deployment geometry, anchor
selection, ranging noise model, localization algorithm) as frozen,
canonically hashable dataclasses, decoupled from *how* campaigns execute
(:mod:`repro.engine`) and *where* results are remembered
(:mod:`repro.store`).  The registry names the built-in workload family;
:func:`expand_grid` turns one base spec into a parameter sweep; and
:func:`run_scenario` executes any spec through the campaign runner or
the early-stopping scheduler, memoized by content address.
"""

from .registry import all_scenarios, get_scenario, register_scenario
from .runner import (
    merge_scenario_shards,
    run_scenario,
    run_scenario_by_id,
    run_scenario_shard,
    scenario_run_key,
    scenario_shard_key,
    scenario_shard_status,
)
from .spec import (
    AnchorSpec,
    DeploymentSpec,
    RangingSpec,
    ScenarioSpec,
    SolverSpec,
    expand_grid,
)
from .trial import draw_deployment, draw_ranges, scenario_trial, select_anchors

__all__ = [
    "AnchorSpec",
    "DeploymentSpec",
    "RangingSpec",
    "ScenarioSpec",
    "SolverSpec",
    "expand_grid",
    "register_scenario",
    "get_scenario",
    "all_scenarios",
    "scenario_trial",
    "draw_deployment",
    "draw_ranges",
    "select_anchors",
    "run_scenario",
    "run_scenario_by_id",
    "run_scenario_shard",
    "scenario_run_key",
    "scenario_shard_key",
    "scenario_shard_status",
    "merge_scenario_shards",
]
