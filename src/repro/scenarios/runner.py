"""Scenario execution: campaigns and sweeps behind the result store.

:func:`run_scenario` is the front door the experiments, the CLI, and the
sweep drivers all use: it turns a :class:`ScenarioSpec` into a campaign
(fixed-count via :func:`repro.engine.run_monte_carlo`, or adaptive via
:func:`repro.engine.scheduler.run_adaptive` when a stopping rule is
given), memoized in a :class:`repro.store.ResultStore` keyed on the
spec's content hash, the master seed, and the scheduling mode.  A cache
hit reconstructs the campaign bit-identically from disk and does zero
simulation work.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..engine.campaign import CampaignResult, run_monte_carlo
from ..engine.scheduler import ConfidenceStop, resolve_chunk_size, run_adaptive
from ..store import ResultStore, campaign_from_payload, campaign_to_payload
from .registry import get_scenario
from .spec import ScenarioSpec
from .trial import scenario_trial

__all__ = ["run_scenario", "run_scenario_by_id", "scenario_run_key"]


def scenario_run_key(
    spec: ScenarioSpec,
    *,
    master_seed: int,
    n_trials: int,
    stopping: Optional[ConfidenceStop] = None,
    chunk_size: Optional[int] = None,
) -> Dict[str, Any]:
    """The canonical description a scenario run is cached under.

    Everything that can change the committed trial records participates:
    the spec's canonical form, the master seed, the trial budget, and —
    for adaptive runs — the stopping rule and evaluation chunk size.
    Worker count and mp context are deliberately absent: they cannot
    change results (the engine's determinism contract).
    """
    mode: Dict[str, Any] = {"kind": "fixed", "n_trials": int(n_trials)}
    if stopping is not None:
        mode = {
            "kind": "adaptive",
            "max_trials": int(n_trials),
            "stopping": stopping.describe(),
            "chunk_size": resolve_chunk_size(stopping, chunk_size),
        }
    return {
        "workload": "scenario-campaign",
        "spec": spec.canonical(),
        "master_seed": int(master_seed),
        "mode": mode,
    }


def run_scenario(
    spec: ScenarioSpec,
    *,
    master_seed: int = 0,
    n_trials: Optional[int] = None,
    n_workers: int = 1,
    stopping: Optional[ConfidenceStop] = None,
    chunk_size: Optional[int] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    mp_context: Optional[str] = None,
) -> CampaignResult:
    """Run (or recall) one scenario campaign.

    Parameters
    ----------
    spec : ScenarioSpec
        The workload; ``spec.n_trials`` is the default trial budget.
    n_trials : int, optional
        Override the spec's trial budget (the cap, for adaptive runs).
    stopping : ConfidenceStop, optional
        When given, run through the adaptive scheduler and stop early on
        convergence; otherwise run the fixed-count campaign.
    store : ResultStore, optional
        Cache for the campaign payload.  On a hit the stored result is
        returned without simulating; on a miss the fresh result is
        published before returning.
    use_cache : bool
        ``False`` skips the lookup but still publishes (a forced
        recompute that heals the cache).
    """
    budget = int(spec.n_trials if n_trials is None else n_trials)
    key = None
    if store is not None:
        key = store.key_for(
            scenario_run_key(
                spec,
                master_seed=master_seed,
                n_trials=budget,
                stopping=stopping,
                chunk_size=chunk_size,
            )
        )
        if use_cache:
            payload = store.get(key)
            if payload is not None:
                return campaign_from_payload(payload)

    if stopping is None:
        result: CampaignResult = run_monte_carlo(
            scenario_trial,
            budget,
            master_seed=master_seed,
            n_workers=n_workers,
            trial_kwargs={"spec": spec},
            mp_context=mp_context,
        )
    else:
        result = run_adaptive(
            scenario_trial,
            budget,
            stopping=stopping,
            master_seed=master_seed,
            n_workers=n_workers,
            chunk_size=chunk_size,
            trial_kwargs={"spec": spec},
            mp_context=mp_context,
        )

    if store is not None and key is not None:
        store.put(key, campaign_to_payload(result))
    return result


def run_scenario_by_id(scenario_id: str, **kwargs) -> CampaignResult:
    """Convenience wrapper: look up a registered scenario and run it."""
    return run_scenario(get_scenario(scenario_id), **kwargs)
