"""Scenario execution: campaigns and sweeps behind the result store.

:func:`run_scenario` is the front door the experiments, the CLI, and the
sweep drivers all use: it turns a :class:`ScenarioSpec` into a campaign
(fixed-count via :func:`repro.engine.run_monte_carlo`, or adaptive via
:func:`repro.engine.scheduler.run_adaptive` when a stopping rule is
given), memoized in a :class:`repro.store.ResultStore` keyed on the
spec's content hash, the master seed, and the scheduling mode.  A cache
hit reconstructs the campaign bit-identically from disk and does zero
simulation work.

Cross-host sharding
-------------------
A fixed-count campaign can be split across hosts: ``shard=ShardSpec(k,
N)`` runs only shard *k*'s contiguous trial range and publishes it under
a shard-addressed key (:func:`scenario_shard_key`).  The store is the
exchange point — once all N shard entries exist, the shards are merged
(automatically by whichever host publishes last, or explicitly via
:func:`merge_scenario_shards` / ``python -m repro merge``) into the
canonical full-campaign entry, byte-identical to the entry a single-host
:func:`run_scenario` would have published (``tests/test_sharding.py``).
Hosts running against physically separate stores reconcile them first
with :mod:`repro.store.sync` (``python -m repro store sync SRC DST``) —
entries cross store and backend boundaries byte-verbatim, so the merge
result is unchanged.  Sharding requires a fixed trial count; it cannot
combine with adaptive early stopping, whose rule needs the global record
prefix.

Everything here talks to the store through its backend-agnostic surface
(``get``/``put``/``contains``/``missing_keys``), so campaigns memoize
identically whether the store is the filesystem layout or the
SQLite-indexed single file (:mod:`repro.store.backends`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .. import telemetry
from ..engine.campaign import CampaignResult, run_monte_carlo
from ..engine.scheduler import ConfidenceStop, resolve_chunk_size, run_adaptive
from ..engine.sharding import (
    ShardCampaignResult,
    ShardSpec,
    merge_shards,
    run_campaign_shard,
)
from ..errors import ValidationError
from ..store import (
    ResultStore,
    campaign_from_payload,
    campaign_to_payload,
    shard_from_payload,
    shard_to_payload,
)
from .registry import get_scenario
from .spec import ScenarioSpec
from .trial import scenario_trial

__all__ = [
    "run_scenario",
    "run_scenario_by_id",
    "scenario_run_key",
    "scenario_shard_key",
    "run_scenario_shard",
    "scenario_shard_status",
    "merge_scenario_shards",
]


def scenario_run_key(
    spec: ScenarioSpec,
    *,
    master_seed: int,
    n_trials: int,
    stopping: Optional[ConfidenceStop] = None,
    chunk_size: Optional[int] = None,
) -> Dict[str, Any]:
    """The canonical description a scenario run is cached under.

    Everything that can change the committed trial records participates:
    the spec's canonical form, the master seed, the trial budget, and —
    for adaptive runs — the stopping rule and evaluation chunk size.
    Worker count and mp context are deliberately absent: they cannot
    change results (the engine's determinism contract).
    """
    mode: Dict[str, Any] = {"kind": "fixed", "n_trials": int(n_trials)}
    if stopping is not None:
        mode = {
            "kind": "adaptive",
            "max_trials": int(n_trials),
            "stopping": stopping.describe(),
            "chunk_size": resolve_chunk_size(stopping, chunk_size),
        }
    return {
        "workload": "scenario-campaign",
        "spec": spec.canonical(),
        "master_seed": int(master_seed),
        "mode": mode,
    }


def scenario_shard_key(
    spec: ScenarioSpec,
    *,
    master_seed: int,
    n_trials: int,
    shard: ShardSpec,
) -> Dict[str, Any]:
    """The canonical description one shard's records are cached under.

    The base fixed-count :func:`scenario_run_key` plus the shard
    descriptor — so shard entries can never collide with (or be mistaken
    for) the canonical full-campaign entry, and every host derives the
    same key from the same ``(spec, seed, budget, K/N)``.
    """
    return {
        "workload": "scenario-campaign-shard",
        "base": scenario_run_key(spec, master_seed=master_seed, n_trials=n_trials),
        "shard": shard.describe(),
    }


def run_scenario(
    spec: ScenarioSpec,
    *,
    master_seed: int = 0,
    n_trials: Optional[int] = None,
    n_workers: int = 1,
    stopping: Optional[ConfidenceStop] = None,
    chunk_size: Optional[int] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    mp_context: Optional[str] = None,
    shard: Optional[ShardSpec] = None,
) -> CampaignResult:
    """Run (or recall) one scenario campaign.

    Parameters
    ----------
    spec : ScenarioSpec
        The workload; ``spec.n_trials`` is the default trial budget.
    n_trials : int, optional
        Override the spec's trial budget (the cap, for adaptive runs).
    stopping : ConfidenceStop, optional
        When given, run through the adaptive scheduler and stop early on
        convergence; otherwise run the fixed-count campaign.
    store : ResultStore, optional
        Cache for the campaign payload.  On a hit the stored result is
        returned without simulating; on a miss the fresh result is
        published before returning.
    use_cache : bool
        ``False`` skips the lookup but still publishes (a forced
        recompute that heals the cache).
    shard : ShardSpec, optional
        Run only this shard of the fixed-count campaign (see
        :func:`run_scenario_shard`, which this delegates to); mutually
        exclusive with ``stopping``.
    """
    if shard is not None:
        if stopping is not None:
            raise ValidationError(
                "sharding requires a fixed trial count; it cannot combine "
                "with adaptive early stopping (the stopping rule is a "
                "function of the global record prefix no shard can see)"
            )
        result, _ = run_scenario_shard(
            spec,
            shard,
            master_seed=master_seed,
            n_trials=n_trials,
            n_workers=n_workers,
            store=store,
            use_cache=use_cache,
            mp_context=mp_context,
        )
        return result
    budget = int(spec.n_trials if n_trials is None else n_trials)
    rec = telemetry.current()
    if rec.active:
        rec.set_manifest(
            scenario_id=spec.scenario_id,
            spec_hash=spec.spec_hash(),
            master_seed=int(master_seed),
            n_trials=budget,
            mode="adaptive" if stopping is not None else "fixed",
        )
    with rec.span("scenario", id=spec.scenario_id, seed=int(master_seed)):
        key = None
        if store is not None:
            key = store.key_for(
                scenario_run_key(
                    spec,
                    master_seed=master_seed,
                    n_trials=budget,
                    stopping=stopping,
                    chunk_size=chunk_size,
                )
            )
            if use_cache:
                payload = store.get(key)
                if payload is not None:
                    return campaign_from_payload(payload)

        if stopping is None:
            result: CampaignResult = run_monte_carlo(
                scenario_trial,
                budget,
                master_seed=master_seed,
                n_workers=n_workers,
                trial_kwargs={"spec": spec},
                mp_context=mp_context,
            )
        else:
            result = run_adaptive(
                scenario_trial,
                budget,
                stopping=stopping,
                master_seed=master_seed,
                n_workers=n_workers,
                chunk_size=chunk_size,
                trial_kwargs={"spec": spec},
                mp_context=mp_context,
            )

        if store is not None and key is not None:
            store.put(key, campaign_to_payload(result))
        return result


def _shard_context(spec: ScenarioSpec, store: ResultStore) -> Dict[str, Any]:
    """Display metadata embedded in shard payloads so store scans
    (``ResultStore.list_shards``, the CLI status listing) can group
    shard entries into campaigns without knowing any keys.  The code
    version is included so shards published by different repro versions
    — which live under different keys and can never merge together —
    are never pooled into one campaign by the status listing."""
    return {
        "scenario_id": spec.scenario_id,
        "spec_hash": spec.spec_hash(),
        "code_version": store.code_version,
    }


def run_scenario_shard(
    spec: ScenarioSpec,
    shard: ShardSpec,
    *,
    master_seed: int = 0,
    n_trials: Optional[int] = None,
    n_workers: int = 1,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    mp_context: Optional[str] = None,
    auto_merge: bool = True,
) -> Tuple[ShardCampaignResult, Optional[CampaignResult]]:
    """Run (or recall) one shard of a scenario campaign on this host.

    Executes only *shard*'s contiguous trial range — trial *i* still
    draws child *i* of ``SeedSequence(master_seed)``, so shards need no
    coordination — and publishes the shard payload under
    :func:`scenario_shard_key`.  With ``auto_merge`` (the default) and a
    store, the completeness probe runs after publication: when this was
    the last missing shard, the canonical full-campaign entry is merged
    and published immediately.

    Returns ``(shard_result, merged)`` where ``merged`` is the full
    :class:`CampaignResult` if the campaign became (or already was)
    complete, else ``None``.
    """
    budget = int(spec.n_trials if n_trials is None else n_trials)
    rec = telemetry.current()
    if rec.active:
        rec.set_manifest(
            scenario_id=spec.scenario_id,
            spec_hash=spec.spec_hash(),
            master_seed=int(master_seed),
            n_trials=budget,
            shard=shard.cli_form,
        )
    key = None
    shard_result: Optional[ShardCampaignResult] = None
    if store is not None:
        key = store.key_for(
            scenario_shard_key(
                spec, master_seed=master_seed, n_trials=budget, shard=shard
            )
        )
        if use_cache:
            payload = store.get(key)
            if payload is not None:
                shard_result = shard_from_payload(payload)
    if shard_result is None:
        shard_result = run_campaign_shard(
            scenario_trial,
            budget,
            shard=shard,
            master_seed=master_seed,
            n_workers=n_workers,
            trial_kwargs={"spec": spec},
            mp_context=mp_context,
        )
        if store is not None and key is not None:
            store.put(
                key, shard_to_payload(shard_result, context=_shard_context(spec, store))
            )

    merged: Optional[CampaignResult] = None
    if store is not None and auto_merge:
        # An already-published canonical entry means some earlier run
        # completed the merge; re-reading it is one small get instead of
        # loading all N shard payloads and republishing identical bytes.
        # (--no-cache recomputes the merge too, healing a suspect entry.)
        if use_cache:
            canonical = store.get(
                store.key_for(
                    scenario_run_key(spec, master_seed=master_seed, n_trials=budget)
                )
            )
            if canonical is not None:
                merged = campaign_from_payload(canonical)
        if merged is None:
            status = scenario_shard_status(
                spec,
                master_seed=master_seed,
                n_trials=budget,
                n_shards=shard.n_shards,
                store=store,
            )
            if all(present for _, present in status):
                merged = merge_scenario_shards(
                    spec,
                    master_seed=master_seed,
                    n_trials=budget,
                    n_shards=shard.n_shards,
                    store=store,
                )
    return shard_result, merged


def scenario_shard_status(
    spec: ScenarioSpec,
    *,
    master_seed: int = 0,
    n_trials: Optional[int] = None,
    n_shards: int,
    store: ResultStore,
) -> List[Tuple[ShardSpec, bool]]:
    """Which of an N-shard campaign's entries are published.

    Returns ``[(shard, present), ...]`` in shard order — the
    completeness probe behind auto-merge and the CLI's shard status.
    """
    budget = int(spec.n_trials if n_trials is None else n_trials)
    shards = [ShardSpec(index=index, n_shards=n_shards) for index in range(n_shards)]
    keys = [
        store.key_for(
            scenario_shard_key(
                spec, master_seed=master_seed, n_trials=budget, shard=shard
            )
        )
        for shard in shards
    ]
    missing = set(store.missing_keys(keys))
    return [(shard, key not in missing) for shard, key in zip(shards, keys)]


def merge_scenario_shards(
    spec: ScenarioSpec,
    *,
    master_seed: int = 0,
    n_trials: Optional[int] = None,
    n_shards: int,
    store: ResultStore,
    publish: bool = True,
) -> CampaignResult:
    """Merge an N-shard campaign's store entries into the canonical one.

    Loads every shard payload, validates the partition, concatenates
    records in trial-index order, and (with ``publish``) publishes the
    merged campaign under the same :func:`scenario_run_key` a
    single-host run uses — producing a byte-identical entry.  Raises
    :class:`ValidationError` naming the missing shards when the set is
    incomplete.
    """
    budget = int(spec.n_trials if n_trials is None else n_trials)
    shards: List[ShardCampaignResult] = []
    missing: List[str] = []
    for index in range(n_shards):
        shard = ShardSpec(index=index, n_shards=n_shards)
        key = store.key_for(
            scenario_shard_key(
                spec, master_seed=master_seed, n_trials=budget, shard=shard
            )
        )
        payload = store.get(key)
        if payload is None:
            missing.append(shard.cli_form)
        else:
            shards.append(shard_from_payload(payload))
    if missing:
        raise ValidationError(
            f"cannot merge {spec.scenario_id!r} (seed={master_seed}, "
            f"trials={budget}): missing shard entries {', '.join(missing)}"
        )
    merged = merge_shards(shards)
    if publish:
        key = store.key_for(
            scenario_run_key(spec, master_seed=master_seed, n_trials=budget)
        )
        store.put(key, campaign_to_payload(merged))
    return merged


def run_scenario_by_id(scenario_id: str, **kwargs) -> CampaignResult:
    """Convenience wrapper: look up a registered scenario and run it."""
    return run_scenario(get_scenario(scenario_id), **kwargs)
