"""The picklable trial function that executes one scenario draw.

:func:`scenario_trial` is the single campaign-contract entry point for
every registered scenario: given a trial ``rng`` and a frozen
:class:`~repro.scenarios.spec.ScenarioSpec`, it draws a fresh deployment,
measures ranges under the spec's noise model, selects anchors, runs the
configured localization algorithm, and returns scalar metrics.  Being a
module-level function whose only argument beyond ``rng`` is a frozen
dataclass, it pickles cleanly and fans out across the
:mod:`multiprocessing` workers of both the fixed-count campaign runner
and the adaptive scheduler.

The draw order (deployment, then ranges, then anchors) is fixed and part
of the reproducibility contract: a scenario's trial stream is a pure
function of the spec and the trial's seed, so cached results stay valid.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core import (
    DistributedConfig,
    LssConfig,
    distributed_localize,
    evaluate_localization,
    localize_network,
    lss_localize,
)
from ..core.aps import dv_hop_localize
from ..engine.backend import use_backend
from ..errors import GraphDisconnectedError, InsufficientDataError
from ..deploy import (
    boundary_anchors,
    paper_grid,
    parking_lot_layout,
    random_anchors,
    spread_anchors,
    square_grid,
    town_layout,
    uniform_random_layout,
)
from ..ranging import gaussian_ranges
from .spec import DeploymentSpec, AnchorSpec, RangingSpec, ScenarioSpec

__all__ = ["scenario_trial", "draw_deployment", "draw_ranges", "select_anchors"]


def draw_deployment(spec: DeploymentSpec, rng) -> np.ndarray:
    """Ground-truth node positions for one trial of *spec*."""
    if spec.kind == "uniform":
        return uniform_random_layout(
            spec.n_nodes,
            width_m=spec.width_m,
            height_m=spec.height_m,
            min_separation_m=spec.min_separation_m,
            rng=rng,
        )
    if spec.kind == "grid":
        side = int(round(spec.n_nodes ** 0.5))
        return square_grid(side, side, spacing_m=spec.spacing_m)
    if spec.kind == "paper-grid":
        return paper_grid(spec.n_nodes, rng=rng)
    if spec.kind == "town":
        return town_layout(spec.n_nodes, min_separation_m=spec.min_separation_m, rng=rng)
    if spec.kind == "parking-lot":
        return parking_lot_layout(spec.n_nodes, rng=rng)
    raise AssertionError(f"unreachable deployment kind {spec.kind!r}")


def draw_ranges(spec: RangingSpec, positions, rng):
    """Measure inter-node ranges for one trial under *spec*'s model."""
    if spec.model == "gaussian":
        return gaussian_ranges(
            positions, max_range_m=spec.max_range_m, sigma_m=spec.sigma_m, rng=rng
        )
    # Full signal-level acoustic campaign (Section 3): calibrate a
    # ranging service for the environment, run chirp rounds, and keep
    # the triangle-consistent confidence-weighted edges.
    from ..acoustics import get_environment
    from ..ranging import RangingService, TdoaConfig, run_campaign, triangle_filter
    from ..ranging.filtering import confidence_weighted_edges

    env = get_environment(spec.environment)
    service = RangingService(
        environment=env, tdoa=TdoaConfig(max_range_m=spec.max_range_m)
    ).calibrate(rng=rng)
    raw = run_campaign(positions, service, rounds=spec.rounds, rng=rng)
    return confidence_weighted_edges(triangle_filter(raw))


def select_anchors(spec: AnchorSpec, positions, rng) -> np.ndarray:
    """Anchor node indices for one trial of *spec* (empty for "none")."""
    n_nodes = int(np.asarray(positions).shape[0])
    count = spec.n_anchors(n_nodes)
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    if spec.strategy == "random":
        return random_anchors(n_nodes, count, rng=rng)
    if spec.strategy == "spread":
        return spread_anchors(positions, count)
    if spec.strategy == "boundary":
        return boundary_anchors(positions, count)
    raise AssertionError(f"unreachable anchor strategy {spec.strategy!r}")


def _fraction(numerator, denominator) -> float:
    denominator = float(denominator)
    if denominator == 0.0:
        return float("nan")
    return float(numerator) / denominator


def _nan_metrics() -> Dict[str, float]:
    return {
        "fraction_localized": float("nan"),
        "mean_error_m": float("nan"),
        "median_error_m": float("nan"),
    }


def _distributed_lss_trial(positions, ranges, spec: ScenarioSpec, rng) -> Dict[str, float]:
    """One distributed-LSS draw (Section 4.3): local maps, stitch, flood.

    The root is the node nearest the deployment centroid (a stable,
    spec-independent choice mirroring the paper's central root).  Draws
    whose root has no local map, or whose measurement graph cannot
    support the pipeline at all, yield nan metrics so campaigns
    aggregate rather than crash.
    """
    n_nodes = int(positions.shape[0])
    config = DistributedConfig(
        local_lss=LssConfig(
            constraint_weight=spec.solver.constraint_weight,
            max_epochs=spec.solver.max_epochs,
            restarts=spec.solver.restarts,
            perturbation_m=2.0,
        ),
        min_spacing_m=spec.solver.min_spacing_m,
        solver=spec.solver.backend,
        array_backend=spec.solver.array_backend,
    )
    centroid = positions.mean(axis=0)
    root = int(np.argmin(np.hypot(*(positions - centroid).T)))
    try:
        result = distributed_localize(ranges, n_nodes, root, config=config, rng=rng)
    except (InsufficientDataError, GraphDisconnectedError):
        return {**_nan_metrics(), "n_local_maps": float("nan")}
    metrics = {
        "fraction_localized": _fraction(result.localized.sum(), n_nodes),
        "n_local_maps": float(len(result.local_maps)),
    }
    if result.localized.sum() >= 3:
        report = evaluate_localization(
            result.positions, positions, localized_mask=result.localized, align=True
        )
        metrics["mean_error_m"] = report.average_error
        metrics["median_error_m"] = report.median_error
    else:
        metrics["mean_error_m"] = float("nan")
        metrics["median_error_m"] = float("nan")
    return metrics


def scenario_trial(rng, *, spec: ScenarioSpec) -> Dict[str, float]:
    """One randomized trial of *spec*: deploy, range, localize, score.

    Returns at least ``fraction_localized`` / ``mean_error_m`` /
    ``median_error_m`` (nan on degenerate draws — no edges, nothing to
    localize — so campaigns aggregate rather than crash), plus
    algorithm-specific extras.

    The spec's ``solver.array_backend`` is installed as the process
    default for the duration of the trial (``use_backend``), so the
    knob rides the picklable spec into campaign workers and every
    engine kernel the solve touches dispatches accordingly; ``None``
    leaves the ambient default (CLI flag / ``REPRO_ARRAY_BACKEND`` /
    NumPy) in place.
    """
    with use_backend(spec.solver.array_backend):
        return _scenario_trial_impl(rng, spec=spec)


def _scenario_trial_impl(rng, *, spec: ScenarioSpec) -> Dict[str, float]:
    positions = draw_deployment(spec.deployment, rng)
    ranges = draw_ranges(spec.ranging, positions, rng)
    anchor_idx = select_anchors(spec.anchors, positions, rng)
    if len(ranges) == 0:
        return _nan_metrics()
    n_nodes = int(positions.shape[0])
    algorithm = spec.solver.algorithm

    if algorithm == "lss":
        config = LssConfig(
            min_spacing_m=spec.solver.min_spacing_m,
            constraint_weight=spec.solver.constraint_weight,
            restarts=spec.solver.restarts,
            max_epochs=spec.solver.max_epochs,
        )
        result = lss_localize(ranges, n_nodes, config=config, rng=rng)
        report = evaluate_localization(result.positions, positions, align=True)
        return {
            "fraction_localized": 1.0,
            "mean_error_m": report.average_error,
            "median_error_m": report.median_error,
            "final_objective": result.error,
            "epochs_run": float(result.epochs_run),
        }

    if algorithm == "distributed-lss":
        return _distributed_lss_trial(positions, ranges, spec, rng)

    anchor_positions = {int(i): positions[i] for i in anchor_idx}
    if algorithm == "multilateration":
        result = localize_network(
            ranges, anchor_positions, n_nodes, solver=spec.solver.backend
        )
    else:  # dv-hop
        result = dv_hop_localize(
            ranges, anchor_positions, n_nodes, solver=spec.solver.backend
        )
    non_anchor = ~result.is_anchor
    localized = result.localized & non_anchor
    report = evaluate_localization(result.positions[localized], positions[localized])
    metrics = {
        "fraction_localized": _fraction(localized.sum(), non_anchor.sum()),
        "mean_error_m": report.average_error,
        "median_error_m": report.median_error,
    }
    if algorithm == "multilateration":
        metrics["average_anchors_per_node"] = result.average_anchors_per_node
    return metrics
