"""Portable Array-API twins of the engine's batched NumPy kernels.

Every function here re-implements one hot kernel of
:mod:`repro.engine.batch` (or the closed-form transform batch of
:mod:`repro.core.transforms`) against a generic array namespace
``xp``, restricted to the Array-API standard surface so the same code
runs on NumPy, CuPy, JAX, and ``array_api_strict``:

- **No in-place mutation.**  Updates are ``xp.where`` selections, so
  immutable-array namespaces (JAX) work unchanged.
- **No data-dependent shapes.**  Where the NumPy kernels compact
  finished problems out of the working batch (a CPU win), these
  kernels freeze them under a boolean ``active`` mask and keep the
  batch shape fixed — the layout accelerators prefer anyway.  The
  per-problem accept/reject trajectory is identical either way, so
  results agree with the NumPy path to floating-point reduction
  tolerance (the cross-backend parity contract of
  ``tests/test_backend_parity.py``).
- **No ``np.add.at`` / ``np.bincount`` scatters.**  Gradient
  scatter-accumulation runs as a matmul against a signed membership
  matrix built host-side at kernel entry — O(N·E) flops instead of
  O(E), the standard trade for portable scatter.

These kernels optimize for portability and accelerator-shaped
dataflow, not for CPU throughput; the NumPy default path in
:mod:`repro.engine.batch` remains the exact pre-seam code.  All
inputs arrive as host NumPy arrays and all outputs return as host
NumPy arrays — device residency begins and ends inside each call
(:mod:`repro.engine.backend`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

# Host-side staging only: inputs arrive and outputs leave as host NumPy
# arrays (see module docstring), and padding/membership matrices are
# assembled host-side before device transfer.  No numpy call touches
# the xp compute path itself.
import numpy as np  # repro-lint: disable=RPL002

__all__ = [
    "gd_descent_xp",
    "lss_error_xp",
    "lss_gradient_xp",
    "lss_descend_xp",
    "lss_error_padded_xp",
    "lss_gradient_padded_xp",
    "lss_descend_padded_xp",
    "transforms_closed_form_xp",
]


def _hypot(xp, x, y):
    """``sqrt(x^2 + y^2)`` on the standard surface (``hypot`` is a
    2023.12 extension not every namespace ships)."""
    return xp.sqrt(x * x + y * y)


def _atan2(xp, y, x):
    return getattr(xp, "atan2", getattr(xp, "arctan2", None))(y, x)


# ---------------------------------------------------------------------------
# Multilateration gradient descent (twin of batch.batch_gradient_descent)
# ---------------------------------------------------------------------------


def gd_descent_xp(
    backend,
    anchors: np.ndarray,
    dists: np.ndarray,
    weights: np.ndarray,
    valid: np.ndarray,
    initial: np.ndarray,
    *,
    step_size: float,
    max_iterations: int,
    tolerance: float,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Masked lockstep twin of :func:`repro.engine.batch.batch_gradient_descent`.

    Same accept/reject rule per problem (×1.1 step on improvement, /2
    on overshoot, stop on gradient norm < *tolerance* or step
    underflow); finished problems freeze in place instead of being
    compacted out.  Returns host ``(positions, residuals,
    iterations_run)``.
    """
    xp = backend.xp
    total = anchors.shape[0]
    if total == 0:
        return np.empty((0, 2)), np.empty(0), 0

    valid_f = valid.astype(np.float64)
    a = backend.asarray(np.where(valid[..., None], anchors, 0.0))
    d = backend.asarray(np.where(valid, dists, 0.0))
    w = backend.asarray(np.where(valid, weights, 0.0))
    sqrt_w = xp.sqrt(w)
    w2 = 2.0 * w
    del valid_f

    def objective(positions):
        diff = positions[:, None, :] - a
        ranges = _hypot(xp, diff[..., 0], diff[..., 1])
        r = sqrt_w * (ranges - d)
        return xp.sum(r * r, axis=1)

    pos = backend.asarray(np.asarray(initial, dtype=float))
    current = objective(pos)
    alpha = backend.asarray(np.full(total, float(step_size)))
    active = backend.asarray(np.ones(total, dtype=bool), dtype=xp.bool)
    zeros_b = xp.zeros(total, dtype=xp.float64)
    iterations_run = 0

    for _ in range(max_iterations):
        iterations_run += 1
        diff = pos[:, None, :] - a
        ranges = xp.maximum(_hypot(xp, diff[..., 0], diff[..., 1]), 1e-12)
        coeff = w2 * (ranges - d) / ranges
        grad = xp.sum(coeff[..., None] * diff, axis=1)
        gnorm = _hypot(xp, grad[:, 0], grad[:, 1])
        not_converged = gnorm >= tolerance

        candidate = pos - alpha[:, None] * grad
        value = objective(candidate)
        improved = active & not_converged & (value < current)
        pos = xp.where(improved[:, None], candidate, pos)
        current = xp.where(improved, value, current)
        rejected = active & ~improved
        alpha = xp.where(
            improved, alpha * 1.1, xp.where(rejected, alpha * 0.5, alpha)
        )
        finished = rejected & (~not_converged | (alpha < 1e-12))
        active = active & ~finished
        if not bool(xp.any(active)):
            break
        del zeros_b  # unused accumulator; keep namespace honest
        zeros_b = None  # type: ignore[assignment]

    return backend.to_numpy(pos), backend.to_numpy(current), iterations_run


# ---------------------------------------------------------------------------
# Shared-edge LSS (twins of batch_lss_error / _gradient / _descend)
# ---------------------------------------------------------------------------


def _signed_membership(pairs: np.ndarray, n_nodes: int) -> np.ndarray:
    """Host-built (n_nodes, n_edges) scatter matrix: +1 at ``i``
    endpoints, -1 at ``j`` endpoints."""
    n_edges = pairs.shape[0]
    member = np.zeros((n_nodes, n_edges))
    cols = np.arange(n_edges)
    member[pairs[:, 0], cols] += 1.0
    member[pairs[:, 1], cols] -= 1.0
    return member


def _shared_device_state(backend, edges, constraint_pairs, n_nodes: int):
    """Transfer one shared-edge problem's static arrays to the device."""
    xp = backend.xp
    state = {
        "i_idx": backend.asarray(np.asarray(edges.pairs[:, 0], dtype=np.int64)),
        "j_idx": backend.asarray(np.asarray(edges.pairs[:, 1], dtype=np.int64)),
        "dists": backend.asarray(np.asarray(edges.distances, dtype=float)),
        "weights": backend.asarray(np.asarray(edges.weights, dtype=float)),
        "member": backend.asarray(_signed_membership(np.asarray(edges.pairs), n_nodes)),
        "ci": None,
        "cj": None,
        "cmember": None,
    }
    if constraint_pairs is not None and constraint_pairs.size:
        cp = np.asarray(constraint_pairs, dtype=np.int64)
        state["ci"] = backend.asarray(cp[:, 0])
        state["cj"] = backend.asarray(cp[:, 1])
        state["cmember"] = backend.asarray(_signed_membership(cp, n_nodes))
    del xp
    return state


def _shared_error(xp, pts, state, min_spacing_m, constraint_weight):
    """Objective on batch-major ``(B, N, 2)`` device stacks."""
    diff = xp.take(pts, state["i_idx"], axis=1) - xp.take(pts, state["j_idx"], axis=1)
    comp = _hypot(xp, diff[..., 0], diff[..., 1])
    value = xp.sum(state["weights"] * (comp - state["dists"]) ** 2, axis=1)
    if min_spacing_m is not None and state["ci"] is not None:
        cdiff = xp.take(pts, state["ci"], axis=1) - xp.take(pts, state["cj"], axis=1)
        ccomp = _hypot(xp, cdiff[..., 0], cdiff[..., 1])
        violation = xp.minimum(ccomp, min_spacing_m) - min_spacing_m
        value = value + constraint_weight * xp.sum(violation * violation, axis=1)
    return value


def _shared_gradient(xp, pts, state, min_spacing_m, constraint_weight):
    """Gradient via signed-membership matmul scatter, ``(B, N, 2)``."""
    diff = xp.take(pts, state["i_idx"], axis=1) - xp.take(pts, state["j_idx"], axis=1)
    comp = _hypot(xp, diff[..., 0], diff[..., 1])
    safe = xp.maximum(comp, 1e-12)
    coeff = (2.0 * state["weights"]) * (comp - state["dists"]) / safe
    grad = xp.matmul(state["member"], coeff[..., None] * diff)
    if min_spacing_m is not None and state["ci"] is not None:
        cdiff = xp.take(pts, state["ci"], axis=1) - xp.take(pts, state["cj"], axis=1)
        ccomp = _hypot(xp, cdiff[..., 0], cdiff[..., 1])
        vcomp = xp.maximum(ccomp, 1e-12)
        vcoeff = 2.0 * constraint_weight * (vcomp - min_spacing_m) / vcomp
        vcoeff = xp.where(
            ccomp < min_spacing_m, vcoeff, xp.zeros(vcoeff.shape, dtype=vcoeff.dtype)
        )
        grad = grad + xp.matmul(state["cmember"], vcoeff[..., None] * cdiff)
    return grad


def lss_error_xp(
    backend,
    configs: np.ndarray,
    edges,
    constraint_pairs: Optional[np.ndarray],
    min_spacing_m: Optional[float],
    constraint_weight: float,
) -> np.ndarray:
    """Generic twin of :func:`repro.engine.batch.batch_lss_error`."""
    xp = backend.xp
    pts = backend.asarray(np.asarray(configs, dtype=float))
    state = _shared_device_state(backend, edges, constraint_pairs, configs.shape[1])
    return backend.to_numpy(
        _shared_error(xp, pts, state, min_spacing_m, constraint_weight)
    )


def lss_gradient_xp(
    backend,
    configs: np.ndarray,
    edges,
    constraint_pairs: Optional[np.ndarray],
    min_spacing_m: Optional[float],
    constraint_weight: float,
) -> np.ndarray:
    """Generic twin of :func:`repro.engine.batch.batch_lss_gradient`."""
    xp = backend.xp
    pts = backend.asarray(np.asarray(configs, dtype=float))
    state = _shared_device_state(backend, edges, constraint_pairs, configs.shape[1])
    return backend.to_numpy(
        _shared_gradient(xp, pts, state, min_spacing_m, constraint_weight)
    )


def lss_descend_xp(
    backend,
    configs: np.ndarray,
    edges,
    constraint_pairs: Optional[np.ndarray],
    *,
    min_spacing_m: Optional[float],
    constraint_weight: float,
    step_size: float,
    max_epochs: int,
    tolerance: float,
    free_mask: np.ndarray,
    traces: Optional[List[List[float]]] = None,
    momentum: float = 0.9,
    patience: int = 50,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Generic twin of :func:`repro.engine.batch.batch_lss_descend`.

    Identical accept/reject schedule (×1.05 on improvement, /2 with
    momentum reset on overshoot, *patience* stalled epochs or step
    underflow to finish).  When *traces* is given, the per-epoch error
    of every active configuration is pulled back to the host each
    epoch — supported for parity, priced accordingly.
    """
    xp = backend.xp
    configs = np.asarray(configs, dtype=float)
    n_batch, n_nodes = configs.shape[:2]
    state = _shared_device_state(backend, edges, constraint_pairs, n_nodes)

    pts = backend.asarray(configs)
    free = backend.asarray(
        np.asarray(free_mask, dtype=float).reshape(1, n_nodes, 1)
    )
    current = _shared_error(xp, pts, state, min_spacing_m, constraint_weight)
    alpha = backend.asarray(np.full(n_batch, float(step_size)))
    velocity = xp.zeros(pts.shape, dtype=pts.dtype)
    stall = backend.asarray(np.zeros(n_batch, dtype=np.int64))
    active = backend.asarray(np.ones(n_batch, dtype=bool), dtype=xp.bool)
    converged = backend.asarray(np.zeros(n_batch, dtype=bool), dtype=xp.bool)
    zero_i = xp.zeros(n_batch, dtype=stall.dtype)
    zero_v = xp.zeros(pts.shape, dtype=pts.dtype)
    epochs_run = 0

    for _ in range(max_epochs):
        epochs_run += 1
        grad = _shared_gradient(xp, pts, state, min_spacing_m, constraint_weight)
        grad = grad * free
        velocity_new = momentum * velocity - alpha[:, None, None] * grad
        candidate = pts + velocity_new
        value = _shared_error(xp, candidate, state, min_spacing_m, constraint_weight)
        improvement = (current - value) / xp.maximum(current, 1e-12)
        improved = active & (value < current)
        rejected = active & ~improved

        imp3 = improved[:, None, None]
        pts = xp.where(imp3, candidate, pts)
        current = xp.where(improved, value, current)
        velocity = xp.where(rejected[:, None, None], zero_v, velocity_new)
        alpha = xp.where(
            improved, alpha * 1.05, xp.where(rejected, alpha * 0.5, alpha)
        )
        stalled = rejected | (improved & (improvement < tolerance))
        stall = xp.where(
            improved & (improvement >= tolerance),
            zero_i,
            stall + xp.astype(stalled, stall.dtype),
        )

        if traces is not None:
            host_active = backend.to_numpy(active)
            host_current = backend.to_numpy(current)
            for b in np.nonzero(host_active)[0]:
                traces[b].append(float(host_current[b]))

        underflow = rejected & (alpha < 1e-14)
        exhausted = active & (stall >= patience) & ~underflow
        newly_done = underflow | exhausted
        converged = converged | newly_done
        active = active & ~newly_done
        if not bool(xp.any(active)):
            break

    return (
        backend.to_numpy(pts),
        backend.to_numpy(current),
        backend.to_numpy(converged).astype(bool),
        epochs_run,
    )


# ---------------------------------------------------------------------------
# Padded heterogeneous LSS (twins of the *_padded kernels)
# ---------------------------------------------------------------------------


def _padded_membership(pairs: np.ndarray, n_nodes: int) -> np.ndarray:
    """Host-built ``(B, N, E)`` signed scatter stack.

    Padded ``(0, 0)`` slots contribute +1 and -1 at the same cell and
    cancel to an exact zero, mirroring the flat-bincount path's
    zero-weight treatment.
    """
    n_problems, n_edges = pairs.shape[:2]
    member = np.zeros((n_problems, n_nodes, n_edges))
    b_idx = np.arange(n_problems)[:, None]
    e_idx = np.arange(n_edges)[None, :]
    np.add.at(member, (b_idx, pairs[..., 0], e_idx), 1.0)
    np.add.at(member, (b_idx, pairs[..., 1], e_idx), -1.0)
    return member


def _padded_device_state(
    backend,
    pairs: np.ndarray,
    dists: np.ndarray,
    weights: np.ndarray,
    constraint_pairs: Optional[np.ndarray],
    constraint_valid: Optional[np.ndarray],
    n_nodes: int,
):
    """Transfer a padded problem stack's static arrays to the device.

    Edge endpoints become flat ``(B·E,)`` indices into the ``(B·N, 2)``
    view (the same flattening the NumPy kernels use), and each pair
    stack gets its signed membership matmul-scatter matrix.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    n_problems = pairs.shape[0]
    base = np.arange(n_problems, dtype=np.int64)[:, None] * n_nodes
    state = {
        "n_problems": n_problems,
        "n_nodes": n_nodes,
        "fi": backend.asarray((base + pairs[..., 0]).reshape(-1)),
        "fj": backend.asarray((base + pairs[..., 1]).reshape(-1)),
        "dists": backend.asarray(np.asarray(dists, dtype=float)),
        "weights": backend.asarray(np.asarray(weights, dtype=float)),
        "member": backend.asarray(_padded_membership(pairs, n_nodes)),
        "cfi": None,
        "cfj": None,
        "cvalid": None,
        "cmember": None,
    }
    if constraint_pairs is not None and np.asarray(constraint_pairs).size:
        cp = np.asarray(constraint_pairs, dtype=np.int64)
        state["cfi"] = backend.asarray((base + cp[..., 0]).reshape(-1))
        state["cfj"] = backend.asarray((base + cp[..., 1]).reshape(-1))
        state["cvalid"] = backend.asarray(
            np.asarray(constraint_valid, dtype=bool), dtype=backend.xp.bool
        )
        state["cmember"] = backend.asarray(_padded_membership(cp, n_nodes))
    return state


def _padded_gather(xp, pts, flat_i, flat_j, shape):
    """Endpoint differences via flat take on the ``(B·N, 2)`` view."""
    flat = xp.reshape(pts, (-1, 2))
    gi = xp.reshape(xp.take(flat, flat_i, axis=0), shape)
    gj = xp.reshape(xp.take(flat, flat_j, axis=0), shape)
    return gi - gj


def _padded_error(xp, pts, state, min_spacing_m, constraint_weight):
    shape = (state["n_problems"], -1, 2)
    diff = _padded_gather(xp, pts, state["fi"], state["fj"], shape)
    comp = _hypot(xp, diff[..., 0], diff[..., 1])
    value = xp.sum(state["weights"] * (comp - state["dists"]) ** 2, axis=1)
    if min_spacing_m is not None and state["cfi"] is not None:
        cdiff = _padded_gather(xp, pts, state["cfi"], state["cfj"], shape)
        ccomp = _hypot(xp, cdiff[..., 0], cdiff[..., 1])
        violation = xp.minimum(ccomp, min_spacing_m) - min_spacing_m
        violation = xp.where(
            state["cvalid"], violation, xp.zeros(violation.shape, dtype=violation.dtype)
        )
        value = value + constraint_weight * xp.sum(violation * violation, axis=1)
    return value


def _padded_gradient(xp, pts, state, min_spacing_m, constraint_weight):
    shape = (state["n_problems"], -1, 2)
    diff = _padded_gather(xp, pts, state["fi"], state["fj"], shape)
    comp = _hypot(xp, diff[..., 0], diff[..., 1])
    safe = xp.maximum(comp, 1e-12)
    coeff = (2.0 * state["weights"]) * (comp - state["dists"]) / safe
    grad = xp.matmul(state["member"], coeff[..., None] * diff)
    if min_spacing_m is not None and state["cfi"] is not None:
        cdiff = _padded_gather(xp, pts, state["cfi"], state["cfj"], shape)
        ccomp = _hypot(xp, cdiff[..., 0], cdiff[..., 1])
        vcomp = xp.maximum(ccomp, 1e-12)
        vcoeff = 2.0 * constraint_weight * (vcomp - min_spacing_m) / vcomp
        active = (ccomp < min_spacing_m) & state["cvalid"]
        vcoeff = xp.where(active, vcoeff, xp.zeros(vcoeff.shape, dtype=vcoeff.dtype))
        grad = grad + xp.matmul(state["cmember"], vcoeff[..., None] * cdiff)
    return grad


def lss_error_padded_xp(
    backend, configs, pairs, dists, weights,
    constraint_pairs, constraint_valid, min_spacing_m, constraint_weight,
) -> np.ndarray:
    """Generic twin of :func:`repro.engine.batch.batch_lss_error_padded`."""
    xp = backend.xp
    configs = np.asarray(configs, dtype=float)
    state = _padded_device_state(
        backend, pairs, dists, weights, constraint_pairs, constraint_valid,
        configs.shape[1],
    )
    pts = backend.asarray(configs)
    return backend.to_numpy(
        _padded_error(xp, pts, state, min_spacing_m, constraint_weight)
    )


def lss_gradient_padded_xp(
    backend, configs, pairs, dists, weights,
    constraint_pairs, constraint_valid, min_spacing_m, constraint_weight,
) -> np.ndarray:
    """Generic twin of :func:`repro.engine.batch.batch_lss_gradient_padded`."""
    xp = backend.xp
    configs = np.asarray(configs, dtype=float)
    state = _padded_device_state(
        backend, pairs, dists, weights, constraint_pairs, constraint_valid,
        configs.shape[1],
    )
    pts = backend.asarray(configs)
    return backend.to_numpy(
        _padded_gradient(xp, pts, state, min_spacing_m, constraint_weight)
    )


def lss_descend_padded_xp(
    backend, configs, pairs, dists, weights,
    *,
    constraint_pairs, constraint_valid, min_spacing_m, constraint_weight,
    step_size, max_epochs, tolerance, momentum=0.9, patience=50,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Generic twin of :func:`repro.engine.batch.batch_lss_descend_padded`.

    Finished problems freeze under the ``active`` mask instead of
    being compacted; each still-active problem's accept/reject
    trajectory matches the NumPy kernel's.
    """
    xp = backend.xp
    configs = np.asarray(configs, dtype=float)
    n_batch, n_nodes = configs.shape[:2]
    if n_batch == 0:
        return configs.copy(), np.empty(0), np.zeros(0, dtype=bool), 0
    state = _padded_device_state(
        backend, pairs, dists, weights, constraint_pairs, constraint_valid, n_nodes
    )

    pts = backend.asarray(configs)
    current = _padded_error(xp, pts, state, min_spacing_m, constraint_weight)
    alpha = backend.asarray(np.full(n_batch, float(step_size)))
    velocity = xp.zeros(pts.shape, dtype=pts.dtype)
    stall = backend.asarray(np.zeros(n_batch, dtype=np.int64))
    active = backend.asarray(np.ones(n_batch, dtype=bool), dtype=xp.bool)
    converged = backend.asarray(np.zeros(n_batch, dtype=bool), dtype=xp.bool)
    zero_i = xp.zeros(n_batch, dtype=stall.dtype)
    zero_v = xp.zeros(pts.shape, dtype=pts.dtype)
    epochs_run = 0

    for _ in range(max_epochs):
        epochs_run += 1
        grad = _padded_gradient(xp, pts, state, min_spacing_m, constraint_weight)
        velocity_new = momentum * velocity - alpha[:, None, None] * grad
        candidate = pts + velocity_new
        value = _padded_error(xp, candidate, state, min_spacing_m, constraint_weight)
        improvement = (current - value) / xp.maximum(current, 1e-12)
        improved = active & (value < current)
        rejected = active & ~improved

        pts = xp.where(improved[:, None, None], candidate, pts)
        current = xp.where(improved, value, current)
        velocity = xp.where(rejected[:, None, None], zero_v, velocity_new)
        alpha = xp.where(
            improved, alpha * 1.05, xp.where(rejected, alpha * 0.5, alpha)
        )
        stalled = rejected | (improved & (improvement < tolerance))
        stall = xp.where(
            improved & (improvement >= tolerance),
            zero_i,
            stall + xp.astype(stalled, stall.dtype),
        )

        finished = (rejected & (alpha < 1e-14)) | (active & (stall >= patience))
        converged = converged | finished
        active = active & ~finished
        if not bool(xp.any(active)):
            break

    return (
        backend.to_numpy(pts),
        backend.to_numpy(current),
        backend.to_numpy(converged).astype(bool),
        epochs_run,
    )


# ---------------------------------------------------------------------------
# Closed-form transform batch (twin of estimate_transforms_closed_form_batch)
# ---------------------------------------------------------------------------


def transforms_closed_form_xp(
    backend,
    sources: np.ndarray,
    targets: np.ndarray,
    valid: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Generic twin of the closed-form transform batch's numeric core.

    Evaluates the same four candidates per problem (both rotation
    roots × both reflection factors) with masked statistics and keeps
    the least-error combination.  Returns host arrays
    ``(rot (P, 2, 2), theta (P,), error (P,), reflected (P,))`` — the
    caller composes the 3×3 matrices and result objects host-side.
    """
    import math

    xp = backend.xp
    sources = np.asarray(sources, dtype=float)
    targets = np.asarray(targets, dtype=float)
    valid = np.asarray(valid, dtype=bool)
    n_problems = sources.shape[0]

    src = backend.asarray(sources)
    tgt = backend.asarray(targets)
    vmask = backend.asarray(valid, dtype=xp.bool)
    cnt = xp.sum(xp.astype(vmask, xp.float64), axis=1)
    v3 = vmask[..., None]
    zero2 = xp.zeros(src.shape, dtype=src.dtype)
    mu_src = xp.sum(xp.where(v3, src, zero2), axis=1) / cnt[:, None]
    mu_tgt = xp.sum(xp.where(v3, tgt, zero2), axis=1) / cnt[:, None]
    zero1 = xp.zeros(src.shape[:2], dtype=src.dtype)
    u = xp.where(vmask, src[..., 0] - mu_src[:, 0:1], zero1)
    v = xp.where(vmask, src[..., 1] - mu_src[:, 1:2], zero1)
    x = xp.where(vmask, tgt[..., 0] - mu_tgt[:, 0:1], zero1)
    y = xp.where(vmask, tgt[..., 1] - mu_tgt[:, 1:2], zero1)
    centered = xp.stack([u, v], axis=-1)

    inf = xp.full(cnt.shape, float("inf"), dtype=xp.float64)
    best_error = inf
    best_theta = xp.zeros(cnt.shape, dtype=xp.float64)
    best_reflect = xp.zeros(cnt.shape, dtype=xp.float64)
    best_rot = xp.zeros((n_problems, 2, 2), dtype=xp.float64)

    for reflect in (False, True):
        f = -1.0 if reflect else 1.0
        v_eff = -v if reflect else v
        c_xu = xp.sum(x * u, axis=1) / cnt
        c_yv = xp.sum(y * v_eff, axis=1) / cnt
        c_xv = xp.sum(x * v_eff, axis=1) / cnt
        c_yu = xp.sum(y * u, axis=1) / cnt
        theta_root = _atan2(xp, c_xv - c_yu, c_xu + c_yv)
        for offset in (0.0, math.pi):
            theta = theta_root + offset
            c = xp.cos(theta)
            s = xp.sin(theta)
            row0 = xp.stack([c, -s], axis=-1)
            row1 = xp.stack([f * s, f * c], axis=-1)
            rot = xp.stack([row0, row1], axis=1)
            mapped = xp.matmul(centered, rot)
            residual = xp.where(v3, mapped + mu_tgt[:, None, :] - tgt, zero2)
            error = xp.sum(residual * residual, axis=(1, 2))
            better = error < best_error
            best_error = xp.where(better, error, best_error)
            best_theta = xp.where(better, theta, best_theta)
            best_reflect = xp.where(
                better, xp.full(cnt.shape, 1.0 if reflect else 0.0), best_reflect
            )
            best_rot = xp.where(better[:, None, None], rot, best_rot)

    return (
        backend.to_numpy(best_rot),
        backend.to_numpy(best_theta),
        backend.to_numpy(best_error),
        backend.to_numpy(best_reflect) > 0.5,
    )
