"""Array-backend (``xp``) resolution for the engine kernels.

Every hot loop in the engine is expressed as masked/padded array
stacks — the shape accelerator execution wants.  This module is the
seam that lets those kernels run on a different array namespace
(CuPy, JAX, or the strict Array-API reference implementation) without
touching the NumPy path at all:

- :func:`get_backend` resolves a backend *by name* into an
  :class:`ArrayBackend` carrying the array namespace (``xp``) plus
  device↔host transfer helpers.
- :func:`resolve_backend` is what kernels call: explicit argument,
  else the process default (:func:`set_default_backend` /
  :func:`use_backend`), else ``$REPRO_ARRAY_BACKEND``, else NumPy.
- Kernel boundaries stay host-side: inputs are NumPy ``float64``
  arrays, outputs are NumPy ``float64``/bool arrays, whatever backend
  did the arithmetic.  Campaign records and store payloads therefore
  never see device arrays (determinism guarantee #9 in
  ``docs/architecture.md``).

The dispatch contract (pinned by ``tests/test_backend_parity.py``):

``numpy``
    The default.  Kernels take the **exact pre-seam code path** —
    same operations, same order, byte-identical outputs, golden pins
    and store payload bytes unchanged.
``numpy-generic``
    The NumPy namespace routed through the portable Array-API kernels
    of :mod:`repro.engine.xp_kernels`.  Always available; it exists so
    the cross-backend differential harness has a second real
    implementation to compare on machines without accelerators, and
    agrees with ``numpy`` to floating-point reduction tolerance.
``array-api-strict``
    The strict Array-API reference namespace (when importable) through
    the same generic kernels — the CI leg that catches accidental
    NumPy-isms.
``cupy`` / ``jax``
    GPU namespaces (when importable) through the generic kernels,
    with device transfer at the kernel boundary.  Tolerance parity,
    not byte parity.
``auto``
    The first importable accelerator (cupy, then jax), silently
    falling back to ``numpy`` when none is present — never a warning,
    never an error.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..errors import ValidationError

__all__ = [
    "ARRAY_BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "ArrayBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]

#: Environment variable naming the process-wide default backend
#: (empty/whitespace values mean unset; invalid names raise the same
#: :class:`ValidationError` the CLI turns into ``exit 2``).
ARRAY_BACKEND_ENV_VAR = "REPRO_ARRAY_BACKEND"

#: Every name :func:`get_backend` accepts, in display order.
BACKEND_NAMES = ("numpy", "numpy-generic", "array-api-strict", "cupy", "jax", "auto")

#: Names that may legitimately be unavailable in a given environment.
_OPTIONAL_BACKENDS = ("array-api-strict", "cupy", "jax")


@dataclass(frozen=True)
class ArrayBackend:
    """One resolved array backend.

    Attributes
    ----------
    name : str
        Canonical backend name (never ``"auto"`` — resolution happens
        in :func:`get_backend`).
    xp : namespace
        The array namespace the generic kernels compute with.
    is_native_numpy : bool
        True only for the default ``"numpy"`` backend, which must take
        the exact pre-seam kernel code path (byte-identity contract).
    """

    name: str
    xp: Any
    is_native_numpy: bool
    _to_host: Optional[Callable[[Any], np.ndarray]] = field(
        default=None, compare=False, repr=False
    )

    def asarray(self, array, *, dtype=None):
        """Host array → device array in this backend's namespace.

        Float inputs default to the backend's ``float64`` so every
        backend computes at the same precision the NumPy path does.
        """
        if dtype is None:
            host = np.asarray(array)
            dtype = self.xp.int64 if host.dtype.kind in "iu" else self.xp.float64
            array = host
        return self.xp.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        """Device array → host NumPy array (the kernel-exit transfer).

        Campaign records and store payloads are host-side ``float64``
        bytes; every kernel funnels its outputs through here before
        returning, whatever namespace produced them.
        """
        if isinstance(array, np.ndarray):
            return array
        if self._to_host is not None:
            return self._to_host(array)
        try:
            return np.asarray(array)
        except (TypeError, ValueError):
            return np.from_dlpack(array)


def _numpy_backend() -> ArrayBackend:
    return ArrayBackend(name="numpy", xp=np, is_native_numpy=True)


def _numpy_generic_backend() -> ArrayBackend:
    return ArrayBackend(name="numpy-generic", xp=np, is_native_numpy=False)


def _strict_backend() -> ArrayBackend:
    import array_api_strict

    return ArrayBackend(
        name="array-api-strict",
        xp=array_api_strict,
        is_native_numpy=False,
        # The strict namespace intentionally resists implicit NumPy
        # coercion; DLPack is its sanctioned export path.
        _to_host=lambda arr: np.from_dlpack(arr),
    )


def _cupy_backend() -> ArrayBackend:
    import cupy

    return ArrayBackend(
        name="cupy",
        xp=cupy,
        is_native_numpy=False,
        _to_host=lambda arr: cupy.asnumpy(arr),
    )


def _jax_backend() -> ArrayBackend:
    import jax

    # The parity contract is float64: JAX computes in float32 unless
    # x64 is enabled, which would fail the tight cross-backend
    # tolerances by orders of magnitude.
    jax.config.update("jax_enable_x64", True)
    import jax.numpy as jnp

    return ArrayBackend(
        name="jax",
        xp=jnp,
        is_native_numpy=False,
        _to_host=lambda arr: np.asarray(arr),
    )


_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {
    "numpy": _numpy_backend,
    "numpy-generic": _numpy_generic_backend,
    "array-api-strict": _strict_backend,
    "cupy": _cupy_backend,
    "jax": _jax_backend,
}

#: The native backend, pre-resolved: it is the answer on the hot
#: ``resolve_backend(None)`` path and can never fail to construct.
_NUMPY = _numpy_backend()

#: Resolved-backend singletons; a namespace import happens once per
#: process, not once per kernel call.
_CACHE: Dict[str, ArrayBackend] = {"numpy": _NUMPY}

#: Process default set by :func:`set_default_backend` (None = fall
#: through to ``$REPRO_ARRAY_BACKEND``, then numpy).
_DEFAULT: Optional[ArrayBackend] = None


def _unknown(name: str) -> ValidationError:
    known = ", ".join(BACKEND_NAMES)
    return ValidationError(
        f"unknown array backend {name!r}; known backends: {known}"
    )


def get_backend(name: str = "auto") -> ArrayBackend:
    """Resolve an array backend by name.

    ``"auto"`` picks the first importable accelerator (cupy, then
    jax) and falls back to ``"numpy"`` silently — no warnings — when
    none is present.  Optional backends whose library is missing raise
    :class:`ValidationError` when named explicitly; unknown names
    always raise.
    """
    name = str(name).strip().lower()
    if name == "auto":
        for candidate in ("cupy", "jax"):
            try:
                return get_backend(candidate)
            except ValidationError:
                continue
        return get_backend("numpy")
    if name not in _FACTORIES:
        raise _unknown(name)
    cached = _CACHE.get(name)
    if cached is not None:
        return cached
    try:
        backend = _FACTORIES[name]()
    except ImportError as exc:
        # NOTE: the hint must not call available_backends() — probing
        # availability routes back through here.
        raise ValidationError(
            f"array backend {name!r} is not available in this environment "
            f"({exc}); install it, use 'numpy'/'numpy-generic', or 'auto' "
            "to fall back silently"
        ) from None
    _CACHE[name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Names (excluding ``"auto"``) resolvable in this environment."""
    names = []
    for name in BACKEND_NAMES:
        if name == "auto":
            continue
        try:
            get_backend(name)
        except ValidationError:
            continue
        names.append(name)
    return tuple(names)


def _env_backend_name() -> Optional[str]:
    value = os.environ.get(ARRAY_BACKEND_ENV_VAR, "").strip()
    return value or None


def default_backend_name() -> str:
    """The name the next ``backend=None`` kernel call will resolve to.

    Recorded in the telemetry manifest so every trace says which
    namespace did the arithmetic.
    """
    if _DEFAULT is not None:
        return _DEFAULT.name
    env = _env_backend_name()
    if env is None:
        return "numpy"
    return get_backend(env).name


def set_default_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-default backend.

    The explicit default wins over ``$REPRO_ARRAY_BACKEND``; clearing
    it restores the env-var-then-numpy fallback.
    """
    global _DEFAULT
    _DEFAULT = None if name is None else get_backend(name)


class use_backend:
    """Context manager scoping a default backend to a ``with`` block.

    The scenario trial path wraps each solve in
    ``use_backend(spec.solver.array_backend)`` so the knob rides the
    picklable spec into campaign workers without threading a parameter
    through every solver signature.  ``None`` is a no-op passthrough.
    """

    def __init__(self, name: Optional[str]):
        self._name = name
        self._saved: Optional[ArrayBackend] = None

    def __enter__(self) -> Optional[ArrayBackend]:
        global _DEFAULT
        self._saved = _DEFAULT
        if self._name is not None:
            _DEFAULT = get_backend(self._name)
        return _DEFAULT

    def __exit__(self, *exc_info) -> None:
        global _DEFAULT
        _DEFAULT = self._saved


def resolve_backend(backend=None) -> ArrayBackend:
    """The kernel-entry resolver.

    Accepts an :class:`ArrayBackend`, a name, or ``None`` (resolution
    order: process default, ``$REPRO_ARRAY_BACKEND``, NumPy).  The
    ``None`` → NumPy path is the hot one — two attribute reads and one
    dict lookup — so the seam stays far under the enforced ≤5%
    overhead ceiling (``benchmarks/test_bench_backend.py``).
    """
    if backend is None:
        if _DEFAULT is not None:
            return _DEFAULT
        env = _env_backend_name()
        if env is None:
            return _NUMPY
        return get_backend(env)
    if isinstance(backend, ArrayBackend):
        return backend
    return get_backend(backend)
