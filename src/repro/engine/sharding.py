"""Cross-host campaign sharding: partition, run, merge.

A Monte-Carlo campaign's trial-index space ``[0, n_trials)`` is an
embarrassingly parallel unit of work, and PR 1's seed discipline makes
it *shardable without coordination*: trial ``i`` always receives child
``i`` of ``SeedSequence(master_seed)``, a pure function of the master
seed and the index — never of which host, worker, or shard executes it.
This module partitions the index space into contiguous shard ranges so
independent hosts can each run ``python -m repro run <id> --shard K/N``
against their own range and exchange results through the content-
addressed store (:mod:`repro.store`), with a merge step that
reassembles the canonical full campaign.  Hosts need not even share a
store: shard entries are immutable content-addressed values, so
per-host stores reconcile conflict-free via :mod:`repro.store.sync`
(``python -m repro store sync SRC DST``) before the merge — across any
store backend, since entries sync byte-verbatim.

Determinism argument
--------------------
Three facts make an N-shard run equivalent to the single-host run:

1. **Seeding is index-keyed.**  Every shard spawns the full
   ``SeedSequence(master_seed).spawn(n_trials)`` child list and slices
   its own range, so shard-local trial ``i`` draws from exactly the
   generator the single-host trial ``i`` would.
2. **Shard ranges partition the index space.**  :func:`plan_shards`
   produces contiguous, non-overlapping, exhaustive ranges — a pure
   function of ``(n_trials, n_shards)``, identical on every host.
3. **Merging is concatenation in index order.**  :func:`merge_shards`
   validates the partition and concatenates records by shard range, so
   the merged record tuple is element-wise identical to the single-host
   tuple — and therefore serializes to byte-identical store entries
   (``tests/test_sharding.py`` pins this).

Sharding composes with worker fan-out (each shard may use its own
``n_workers``) but not with adaptive early stopping: the stopping rule
is a function of the global in-order record prefix, which no shard can
see.  The scenario layer rejects that combination.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..errors import ValidationError
from .campaign import CampaignResult, _execute_payloads

__all__ = [
    "ShardSpec",
    "ShardCampaignResult",
    "plan_shards",
    "shard_bounds",
    "run_campaign_shard",
    "merge_shards",
]


@dataclass(frozen=True)
class ShardSpec:
    """One shard of an N-way campaign partition.

    Attributes
    ----------
    index : int
        Zero-based shard index in ``[0, n_shards)``.
    n_shards : int
        Total number of shards in the partition.
    """

    index: int
    n_shards: int

    def __post_init__(self):
        if self.n_shards < 1:
            raise ValidationError("n_shards must be >= 1")
        if not 0 <= self.index < self.n_shards:
            raise ValidationError(
                f"shard index must be in [0, {self.n_shards}); got {self.index}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``"K/N"`` (one-based K, as in ``--shard 2/3``)."""
        head, sep, tail = str(text).partition("/")
        try:
            if not sep:
                raise ValueError(text)
            k, n = int(head), int(tail)
        except ValueError:
            raise ValidationError(
                f"shard must look like K/N (e.g. 2/3); got {text!r}"
            ) from None
        if not 1 <= k <= n:
            raise ValidationError(f"shard K/N needs 1 <= K <= N; got {text!r}")
        return cls(index=k - 1, n_shards=n)

    @property
    def cli_form(self) -> str:
        """The one-based ``"K/N"`` rendering used by the CLI."""
        return f"{self.index + 1}/{self.n_shards}"

    def describe(self) -> dict:
        """Canonical description (participates in store keys)."""
        return {"index": self.index, "n_shards": self.n_shards}


def plan_shards(n_trials: int, n_shards: int) -> Tuple[Tuple[int, int], ...]:
    """Contiguous near-equal ``(start, stop)`` ranges covering ``[0, n_trials)``.

    The first ``n_trials % n_shards`` shards carry one extra trial, so
    sizes differ by at most one.  A pure function of its arguments —
    every host computes the identical plan.  Requires
    ``n_shards <= n_trials`` so no shard is empty.
    """
    if n_trials < 1:
        raise ValidationError("n_trials must be >= 1")
    if n_shards < 1:
        raise ValidationError("n_shards must be >= 1")
    if n_shards > n_trials:
        raise ValidationError(
            f"cannot split {n_trials} trials into {n_shards} non-empty shards"
        )
    base, extra = divmod(n_trials, n_shards)
    bounds = []
    start = 0
    for k in range(n_shards):
        stop = start + base + (1 if k < extra else 0)
        bounds.append((start, stop))
        start = stop
    return tuple(bounds)


def shard_bounds(n_trials: int, shard: ShardSpec) -> Tuple[int, int]:
    """*shard*'s ``(start, stop)`` trial-index range in an *n_trials* campaign."""
    return plan_shards(n_trials, shard.n_shards)[shard.index]


@dataclass(frozen=True)
class ShardCampaignResult(CampaignResult):
    """The records of one shard of a campaign.

    Inherits :class:`CampaignResult` (records carry their *global* trial
    indices; ``aggregate()``/``summary()`` describe the shard alone) and
    adds the partition coordinates: which shard this is and the full
    campaign's trial budget.
    """

    campaign_trials: int
    shard: ShardSpec

    @property
    def bounds(self) -> Tuple[int, int]:
        """This shard's ``(start, stop)`` trial-index range."""
        return shard_bounds(self.campaign_trials, self.shard)

    def describe(self) -> str:
        start, stop = self.bounds
        return (
            f"shard {self.shard.cli_form}: trials [{start}, {stop}) "
            f"of {self.campaign_trials}"
        )


def run_campaign_shard(
    trial_fn: Callable[..., Mapping[str, float]],
    n_trials: int,
    *,
    shard: ShardSpec,
    master_seed: int = 0,
    n_workers: int = 1,
    trial_kwargs: Optional[Mapping[str, object]] = None,
    mp_context: Optional[str] = None,
) -> ShardCampaignResult:
    """Run one shard of an *n_trials* campaign on this host.

    Executes only the trials in :func:`shard_bounds`'s range, each with
    the same ``SeedSequence`` child stream it would receive from
    :func:`repro.engine.campaign.run_monte_carlo` — so N hosts running
    the N shards produce, together, exactly the single-host record set.
    Parameters match ``run_monte_carlo`` plus ``shard``.
    """
    start, stop = shard_bounds(n_trials, shard)
    kwargs = dict(trial_kwargs or {})
    # Spawn the *full* child list and slice: SeedSequence.spawn keys
    # children by index alone, so shard-local trial i is seeded exactly
    # like single-host trial i.
    children = np.random.SeedSequence(master_seed).spawn(n_trials)
    payloads = [(trial_fn, i, children[i], kwargs) for i in range(start, stop)]
    rec = telemetry.current()
    with rec.span(
        "shard",
        shard=shard.cli_form,
        start=int(start),
        stop=int(stop),
        n_trials=int(n_trials),
        n_workers=int(n_workers),
    ):
        records = _execute_payloads(payloads, n_workers, mp_context, traced=rec.active)
    rec.count("engine.shard.trials", len(records))
    return ShardCampaignResult(
        master_seed=int(master_seed),
        records=tuple(records),
        campaign_trials=int(n_trials),
        shard=shard,
    )


def merge_shards(shards: Sequence[ShardCampaignResult]) -> CampaignResult:
    """Reassemble the canonical full campaign from its N shard results.

    Validates that the shards form one complete partition (same master
    seed, same budget, same shard count, every shard index present
    exactly once, record indices matching each shard's planned range)
    and concatenates records in trial-index order.  The result is
    indistinguishable from the single-host :func:`run_monte_carlo`
    output — same type, same records, same serialized bytes.
    """
    if not shards:
        raise ValidationError("merge_shards needs at least one shard result")
    for result in shards:
        if not isinstance(result, ShardCampaignResult):
            raise ValidationError(
                f"merge_shards takes ShardCampaignResult items; got {type(result)!r}"
            )
    first = shards[0]
    n_shards = first.shard.n_shards
    for result in shards:
        if result.master_seed != first.master_seed:
            raise ValidationError(
                f"shards disagree on master_seed: {result.master_seed} "
                f"vs {first.master_seed}"
            )
        if result.campaign_trials != first.campaign_trials:
            raise ValidationError(
                f"shards disagree on campaign_trials: {result.campaign_trials} "
                f"vs {first.campaign_trials}"
            )
        if result.shard.n_shards != n_shards:
            raise ValidationError(
                f"shards disagree on n_shards: {result.shard.n_shards} "
                f"vs {n_shards}"
            )
    present = sorted(result.shard.index for result in shards)
    if present != list(range(n_shards)):
        missing = sorted(set(range(n_shards)) - set(present))
        if missing:
            raise ValidationError(
                f"incomplete shard set: missing shard indices {missing} "
                f"of {n_shards}"
            )
        raise ValidationError(f"duplicate shard indices in {present}")

    rec = telemetry.current()
    wall0, cpu0 = time.perf_counter(), time.process_time()
    ordered = sorted(shards, key=lambda result: result.shard.index)
    records: list = []
    for result in ordered:
        start, stop = result.bounds
        indices = [record.index for record in result.records]
        if indices != list(range(start, stop)):
            raise ValidationError(
                f"shard {result.shard.cli_form} records cover indices "
                f"{indices[:3]}..{indices[-3:] if indices else []} but its "
                f"range is [{start}, {stop})"
            )
        records.extend(result.records)
    rec.add_span(
        "shard-merge",
        time.perf_counter() - wall0,
        time.process_time() - cpu0,
        n_shards=int(n_shards),
        records=len(records),
    )
    rec.count("engine.shard.merges", 1)
    rec.count("engine.shard.merged_records", len(records))
    return CampaignResult(master_seed=first.master_seed, records=tuple(records))
