"""Batched NumPy solver kernels (see :mod:`repro.engine` for layout).

Every kernel here is the vectorized twin of a scalar reference
implementation in :mod:`repro.core`:

====================================  =====================================
batched kernel                        scalar reference
====================================  =====================================
:func:`batch_gradient_descent`        ``multilateration._gradient_descent_solve``
:func:`consistency_filter_fast`       ``multilateration.intersection_consistency_filter``
:func:`batch_lss_error`               ``lss.lss_error``
:func:`batch_lss_gradient`            ``lss.lss_gradient``
:func:`batch_lss_descend`             ``lss._descend_scalar``
:func:`batch_lss_error_padded`        ``lss.lss_error`` (per problem)
:func:`batch_lss_gradient_padded`     ``lss.lss_gradient`` (per problem)
:func:`batch_lss_descend_padded`      ``lss._descend_scalar`` (per problem)
====================================  =====================================

Two stacking layouts coexist.  The *shared-edge* kernels
(:func:`batch_lss_error` et al.) advance ``(n_configs, n_nodes, 2)``
configurations of **one** problem — the same node count and edge list
for every batch entry — and back multi-seed/multi-restart campaigns.
The *padded* kernels (``*_padded``) stack **heterogeneous** problems:
each batch entry has its own node count, edge list, and constraint set,
padded to the batch maxima with zero-weight edge slots and masked
constraint slots, so every padded slot contributes exact zeros to the
objective and gradient.  This is the layout the distributed-LSS
pipeline (paper Section 4.3, Figures 24/25) uses to solve every node's
local-map problem for a refinement round in one descent loop.

The parity contract (same per-problem operations, in the same order,
with padded slots contributing exact zeros) is what makes the
equivalence tests in ``tests/test_engine_batch.py`` and
``tests/test_distributed.py`` meaningful: a batched result may differ
from the scalar one only by floating-point reduction error, never by
algorithm.

Every public kernel takes a ``backend`` argument (a name, an
:class:`~repro.engine.backend.ArrayBackend`, or ``None`` for the
process default).  On the default NumPy backend the kernel body below
runs unchanged — the exact pre-seam code path, byte-identical outputs
(determinism guarantee #9).  Any other backend dispatches to the
portable Array-API twins in :mod:`repro.engine.xp_kernels`, which
agree to floating-point tolerance (``tests/test_backend_parity.py``).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..errors import ValidationError
from . import xp_kernels
from .backend import resolve_backend

__all__ = [
    "batch_gradient_descent",
    "batch_lss_descend",
    "batch_lss_descend_padded",
    "batch_lss_error",
    "batch_lss_error_padded",
    "batch_lss_gradient",
    "batch_lss_gradient_padded",
    "consistency_filter_fast",
    "lss_localize_multistart",
    "solve_multilateration_batch",
]


# ---------------------------------------------------------------------------
# Vectorized intersection consistency filter (Section 4.1.2)
# ---------------------------------------------------------------------------


def consistency_filter_fast(
    anchor_positions: np.ndarray,
    distances: np.ndarray,
    *,
    cluster_radius_m: float = 1.0,
) -> np.ndarray:
    """Vectorized intersection consistency filter for one problem.

    Same semantics as
    :func:`repro.core.multilateration.intersection_consistency_filter`
    (anchors whose range circles produce no intersection point within
    *cluster_radius_m* of a point from a *different* circle pair are
    dropped; the full set is returned when fewer than three anchors
    survive).  This is the batch-of-one view of the same
    :func:`_batch_consistency_keep` kernel the network solver runs, so
    parity tests against the scalar reference exercise exactly the hot
    path.  Inputs are trusted; use the core function for validated
    user-facing calls.
    """
    anchors = np.asarray(anchor_positions, dtype=float)
    dists = np.asarray(distances, dtype=float)
    n = anchors.shape[0]
    if n < 3:
        return np.arange(n)
    keep = _batch_consistency_keep(
        anchors[None, :, :],
        dists[None, :],
        np.ones((1, n), dtype=bool),
        cluster_radius_m,
    )[0]
    return np.nonzero(keep)[0].astype(np.int64)


# ---------------------------------------------------------------------------
# Batched multilateration (Section 4.1)
# ---------------------------------------------------------------------------


def _batch_objective(
    positions: np.ndarray,
    anchors: np.ndarray,
    dists: np.ndarray,
    sqrt_w: np.ndarray,
) -> np.ndarray:
    """Weighted least-squares objective for each problem, shape (B,)."""
    diff = positions[:, None, :] - anchors
    ranges = np.hypot(diff[..., 0], diff[..., 1])
    r = sqrt_w * (ranges - dists)
    return np.einsum("bk,bk->b", r, r)


def _finish_scalar(
    anchors: np.ndarray,
    dists: np.ndarray,
    weights2: np.ndarray,
    sqrt_w: np.ndarray,
    pos: np.ndarray,
    current: float,
    alpha: float,
    iterations: int,
    tolerance: float,
) -> Tuple[np.ndarray, float]:
    """Finish one problem's descent without batch overhead.

    Continues the identical accept/reject trajectory from the batched
    loop's state (*weights2* is the pre-doubled ``2 w``); used once the
    active batch has shrunk to a couple of stragglers, whose remaining
    iterations would otherwise each pay the full batched-op dispatch
    cost.
    """
    pos = pos.copy()
    for _ in range(iterations):
        diff = pos - anchors
        ranges = np.maximum(np.hypot(diff[:, 0], diff[:, 1]), 1e-12)
        coeff = weights2 * (ranges - dists) / ranges
        grad = (coeff[:, None] * diff).sum(axis=0)
        if np.hypot(grad[0], grad[1]) < tolerance:
            break
        candidate = pos - alpha * grad
        cdiff = candidate - anchors
        r = sqrt_w * (np.hypot(cdiff[:, 0], cdiff[:, 1]) - dists)
        value = float(np.dot(r, r))
        if value < current:
            pos = candidate
            current = value
            alpha *= 1.1
        else:
            alpha *= 0.5
            if alpha < 1e-12:
                break
    return pos, current


@lru_cache(maxsize=None)
def _kernel_counter_names(name: str) -> Tuple[str, str, str, str]:
    """Counter names for one kernel, formatted once per process: the
    disabled-telemetry path must not pay f-string rendering per solve
    (lint rule RPL008)."""
    prefix = f"engine.batch.{name}"
    return (
        f"{prefix}_solves",
        f"{prefix}_problems",
        f"{prefix}_iterations",
        f"{prefix}_compactions",
    )


def _count_kernel(
    name: str, n_problems: int, iterations: int, compactions: Optional[int] = None
) -> None:
    """One counter bundle per kernel *call* (never per epoch), so the
    disabled-telemetry path stays a handful of no-op calls per solve."""
    solves, problems, iters, compact = _kernel_counter_names(name)
    telemetry.count(solves, 1)
    telemetry.count(problems, n_problems)
    telemetry.count(iters, iterations)
    if compactions is not None:
        telemetry.count(compact, compactions)


def batch_gradient_descent(
    anchors: np.ndarray,
    dists: np.ndarray,
    weights: np.ndarray,
    valid: np.ndarray,
    initial: np.ndarray,
    *,
    step_size: float = 0.1,
    max_iterations: int = 2000,
    tolerance: float = 1e-9,
    backend=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Adaptive gradient descent over a batch of multilateration problems.

    Parameters
    ----------
    anchors : ndarray of shape (B, K, 2)
        Padded anchor coordinates per problem.
    dists, weights : ndarray of shape (B, K)
        Measured distances and confidence weights; padded slots may hold
        anything (they are zeroed via *valid*).
    valid : ndarray of bool, shape (B, K)
        True for real anchor slots.
    initial : ndarray of shape (B, 2)
        Per-problem starting points.

    Returns ``(positions (B, 2), residuals (B,))``.  Each problem runs
    the identical accept/reject rule of the scalar solver (x1.1 step on
    improvement, /2 on overshoot, stop on gradient norm < *tolerance*
    or step < 1e-12) on its own adaptive step size; finished problems
    are compacted out of the working batch.
    """
    be = resolve_backend(backend)
    if not be.is_native_numpy:
        pos, res, iterations = xp_kernels.gd_descent_xp(
            be,
            np.asarray(anchors, dtype=float),
            np.asarray(dists, dtype=float),
            np.asarray(weights, dtype=float),
            np.asarray(valid, dtype=bool),
            np.asarray(initial, dtype=float),
            step_size=step_size,
            max_iterations=max_iterations,
            tolerance=tolerance,
        )
        _count_kernel("gd", pos.shape[0], iterations, 0)
        return pos, res
    total = anchors.shape[0]
    pos_out = np.empty((total, 2))
    res_out = np.empty(total)
    if total == 0:
        return pos_out, res_out

    w = np.where(valid, weights, 0.0)
    d = np.where(valid, dists, 0.0)
    a = np.where(valid[..., None], anchors, 0.0)
    sqrt_w = np.sqrt(w)
    w2 = 2.0 * w

    remaining = np.arange(total)
    pos = initial.astype(float).copy()
    current = _batch_objective(pos, a, d, sqrt_w)
    alpha = np.full(total, float(step_size))
    iterations_run = 0
    compactions = 0

    for iteration in range(max_iterations):
        iterations_run = iteration + 1
        diff = pos[:, None, :] - a
        ranges = np.maximum(np.hypot(diff[..., 0], diff[..., 1]), 1e-12)
        coeff = w2 * (ranges - d) / ranges
        grad = (coeff[:, None, :] @ diff)[:, 0, :]
        gnorm = np.hypot(grad[:, 0], grad[:, 1])
        not_converged = gnorm >= tolerance

        candidate = pos - alpha[:, None] * grad
        value = _batch_objective(candidate, a, d, sqrt_w)
        improved = not_converged & (value < current)
        np.copyto(pos, candidate, where=improved[:, None])
        np.copyto(current, value, where=improved)
        alpha *= np.where(improved, 1.1, 0.5)
        finished = ~improved & (~not_converged | (alpha < 1e-12))

        if finished.any():
            compactions += 1
            done_idx = remaining[finished]
            pos_out[done_idx] = pos[finished]
            res_out[done_idx] = current[finished]
            keep = ~finished
            if not keep.any():
                _count_kernel("gd", total, iterations_run, compactions)
                return pos_out, res_out
            remaining = remaining[keep]
            pos = pos[keep]
            current = current[keep]
            alpha = alpha[keep]
            a = a[keep]
            d = d[keep]
            w2 = w2[keep]
            sqrt_w = sqrt_w[keep]
            if remaining.size <= 2:
                # A couple of stragglers left: their remaining
                # iterations cost less on the scalar fast path than
                # under full batched-dispatch overhead.
                iters_left = max_iterations - iteration - 1
                for t in range(remaining.size):
                    p, c = _finish_scalar(
                        a[t],
                        d[t],
                        w2[t],
                        sqrt_w[t],
                        pos[t],
                        float(current[t]),
                        float(alpha[t]),
                        iters_left,
                        tolerance,
                    )
                    pos_out[remaining[t]] = p
                    res_out[remaining[t]] = c
                _count_kernel("gd", total, iterations_run, compactions)
                return pos_out, res_out

    pos_out[remaining] = pos
    res_out[remaining] = current
    _count_kernel("gd", total, iterations_run, compactions)
    return pos_out, res_out


def _batch_collinear(
    anchors: np.ndarray, valid: np.ndarray, *, tol: float = 1e-9
) -> np.ndarray:
    """Batched twin of ``geometry.is_collinear`` on masked anchor sets.

    Invalid slots become zero rows of the centered matrix, which leave
    the singular values untouched, so each problem's verdict matches
    the scalar predicate on its unpadded anchor set.
    """
    counts = valid.sum(axis=1)
    safe_counts = np.maximum(counts, 1)
    masked = np.where(valid[..., None], anchors, 0.0)
    mean = masked.sum(axis=1) / safe_counts[:, None]
    centered = np.where(valid[..., None], anchors - mean[:, None, :], 0.0)
    scale = np.abs(centered).max(axis=(1, 2))
    collinear = counts <= 2
    nonzero = scale > 0.0
    todo = ~collinear & nonzero
    if np.any(todo):
        normalized = centered[todo] / scale[todo, None, None]
        singulars = np.linalg.svd(normalized, compute_uv=False)
        collinear[np.nonzero(todo)[0][singulars[:, -1] < tol]] = True
    collinear[~nonzero] = True
    return collinear


#: Cap on elements per (chunk, 2P, 2P) point-distance matrix in the
#: batched consistency filter (~64 MB of float64 per temporary).
_FILTER_CHUNK_ELEMENTS = 8_000_000


def _batch_consistency_keep(
    anchors: np.ndarray,
    dists: np.ndarray,
    valid: np.ndarray,
    cluster_radius_m: float,
) -> np.ndarray:
    """Intersection consistency filter over a whole padded batch.

    Returns a ``(B, K)`` keep mask with the reference filter's per-
    problem semantics: anchors of circle pairs whose intersection
    points lie within *cluster_radius_m* of a point from a different
    pair are kept; problems where fewer than three anchors would
    survive (including the no-intersections case) keep their full
    valid set.  Tangent pairs produce the same point twice here where
    the scalar path stores it once — a duplicate of the same pair can
    never vouch for itself, so the consistent sets are identical.

    The point-cluster check materializes ``(chunk, 2P, 2P)`` distance
    matrices with ``P = K(K-1)/2``; the batch is processed in chunks
    sized to keep those temporaries bounded, so one densely-anchored
    problem cannot balloon the whole round's memory footprint.
    """
    n_problems, max_k = dists.shape
    if max_k < 2:
        return valid.copy()
    n_points = max_k * (max_k - 1)  # 2P point slots per problem
    chunk = max(1, _FILTER_CHUNK_ELEMENTS // (n_points * n_points))
    if chunk < n_problems:
        out = np.empty_like(valid)
        for start in range(0, n_problems, chunk):
            stop = start + chunk
            out[start:stop] = _batch_consistency_keep(
                anchors[start:stop], dists[start:stop], valid[start:stop],
                cluster_radius_m,
            )
        return out
    i_idx, j_idx = np.triu_indices(max_k, k=1)
    ca = anchors[:, i_idx]
    cb = anchors[:, j_idx]
    ra = dists[:, i_idx]
    rb = dists[:, j_idx]
    ab = cb - ca
    dd = np.hypot(ab[..., 0], ab[..., 1])
    pair_ok = (
        valid[:, i_idx]
        & valid[:, j_idx]
        & (dd > 0.0)
        & (ra > 0.0)
        & (rb > 0.0)
        & (dd <= ra + rb)
        & (dd >= np.abs(ra - rb))
    )
    safe_d = np.where(dd > 0.0, dd, 1.0)
    along = (ra**2 - rb**2 + dd**2) / (2.0 * safe_d)
    h = np.sqrt(np.maximum(ra**2 - along**2, 0.0))
    mid = ca + (along / safe_d)[..., None] * ab
    perp = np.stack([-ab[..., 1], ab[..., 0]], axis=-1) / safe_d[..., None]
    offset = h[..., None] * perp
    # (B, 2P, 2): the two intersection points of every pair.
    points = np.concatenate([mid + offset, mid - offset], axis=1)
    point_ok = np.concatenate([pair_ok, pair_ok], axis=1)

    n_pairs = i_idx.shape[0]
    pair_id = np.concatenate([np.arange(n_pairs), np.arange(n_pairs)])
    same_pair = pair_id[:, None] == pair_id[None, :]
    membership = np.zeros((2 * n_pairs, max_k))
    membership[np.arange(2 * n_pairs), np.concatenate([i_idx, i_idx])] = 1.0
    membership[np.arange(2 * n_pairs), np.concatenate([j_idx, j_idx])] = 1.0

    dx = points[..., 0][:, :, None] - points[..., 0][:, None, :]
    dy = points[..., 1][:, :, None] - points[..., 1][:, None, :]
    close = np.hypot(dx, dy) <= cluster_radius_m
    vouch = (
        close
        & ~same_pair[None, :, :]
        & point_ok[:, :, None]
        & point_ok[:, None, :]
    )
    vouched = vouch.any(axis=2)
    consistent = (vouched.astype(float) @ membership) > 0.0
    counts = consistent.sum(axis=1)
    return np.where((counts >= 3)[:, None], consistent, valid)


def solve_multilateration_batch(
    anchor_sets: Sequence[np.ndarray],
    dist_sets: Sequence[np.ndarray],
    weight_sets: Sequence[np.ndarray],
    *,
    min_anchors: int = 3,
    consistency_check: bool = True,
    cluster_radius_m: float = 1.0,
    step_size: float = 0.1,
    max_iterations: int = 2000,
    tolerance: float = 1e-9,
    backend=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Solve a batch of heterogeneous multilateration problems at once.

    Each problem ``b`` is (anchor_sets[b] of shape (k_b, 2),
    dist_sets[b], weight_sets[b]).  Per problem this applies the same
    pipeline as :func:`repro.core.multilaterate` with the gradient
    solver: intersection consistency filter (falling back to the full
    anchor set when fewer than *min_anchors* survive), collinearity
    rejection, weighted-centroid initialization, adaptive gradient
    descent.

    Returns
    -------
    positions : ndarray of shape (B, 2)
        Estimates; rows of unsolvable problems (too few anchors or
        collinear anchors) are nan.
    solved : ndarray of bool, shape (B,)
    residuals : ndarray of shape (B,)
        Final objective values (nan where unsolved).
    """
    n_problems = len(anchor_sets)
    positions = np.full((n_problems, 2), np.nan)
    residuals = np.full(n_problems, np.nan)
    solved = np.zeros(n_problems, dtype=bool)
    if n_problems == 0:
        return positions, solved, residuals

    max_k = max(np.asarray(a).shape[0] for a in anchor_sets)
    stacked_anchors = np.zeros((n_problems, max_k, 2))
    stacked_dists = np.zeros((n_problems, max_k))
    stacked_weights = np.zeros((n_problems, max_k))
    valid = np.zeros((n_problems, max_k), dtype=bool)
    for b in range(n_problems):
        anchors = np.asarray(anchor_sets[b], dtype=float)
        k = anchors.shape[0]
        stacked_anchors[b, :k] = anchors
        stacked_dists[b, :k] = np.asarray(dist_sets[b], dtype=float)
        stacked_weights[b, :k] = np.asarray(weight_sets[b], dtype=float)
        valid[b, :k] = True

    if consistency_check:
        keep = _batch_consistency_keep(
            stacked_anchors, stacked_dists, valid, cluster_radius_m
        )
        counts = keep.sum(axis=1)
        valid = np.where((counts >= min_anchors)[:, None], keep, valid)

    enough = valid.sum(axis=1) >= min_anchors
    collinear = _batch_collinear(stacked_anchors, valid)
    solvable = enough & ~collinear
    if not np.any(solvable):
        return positions, solved, residuals

    sub_anchors = stacked_anchors[solvable]
    sub_dists = stacked_dists[solvable]
    sub_weights = np.where(valid[solvable], stacked_weights[solvable], 0.0)
    sub_valid = valid[solvable]

    totals = sub_weights.sum(axis=1)
    weighted = np.einsum("bk,bkx->bx", sub_weights, sub_anchors)
    counts = np.maximum(sub_valid.sum(axis=1), 1)
    plain_mean = np.where(sub_valid[..., None], sub_anchors, 0.0).sum(axis=1) / counts[
        :, None
    ]
    initial = np.where(
        (totals > 0)[:, None], weighted / np.maximum(totals, 1e-300)[:, None], plain_mean
    )

    # Stacking, the consistency filter, collinearity rejection, and the
    # centroid init are one-shot setup and stay host-side NumPy for
    # every backend; only the descent loop dispatches.
    pos, res = batch_gradient_descent(
        sub_anchors,
        sub_dists,
        sub_weights,
        sub_valid,
        initial,
        step_size=step_size,
        max_iterations=max_iterations,
        tolerance=tolerance,
        backend=backend,
    )
    positions[solvable] = pos
    residuals[solvable] = res
    solved[solvable] = True
    return positions, solved, residuals


# ---------------------------------------------------------------------------
# Batched LSS (Section 4.2)
# ---------------------------------------------------------------------------


def batch_lss_error(
    configs: np.ndarray,
    edges,
    *,
    constraint_pairs: Optional[np.ndarray] = None,
    min_spacing_m: Optional[float] = None,
    constraint_weight: float = 10.0,
    backend=None,
) -> np.ndarray:
    """LSS objective ``E`` for stacked configurations, shape (B,).

    ``configs`` has shape ``(B, n_nodes, 2)``; per configuration this is
    the same reduction as :func:`repro.core.lss.lss_error`.
    """
    pts = np.asarray(configs, dtype=float)
    be = resolve_backend(backend)
    if not be.is_native_numpy:
        return xp_kernels.lss_error_xp(
            be, pts, edges, constraint_pairs, min_spacing_m, constraint_weight
        )
    return _lss_error_t(pts.transpose(1, 0, 2), edges, constraint_pairs,
                        min_spacing_m, constraint_weight)


def _lss_error_t(
    pts_t: np.ndarray,
    edges,
    constraint_pairs: Optional[np.ndarray],
    min_spacing_m: Optional[float],
    constraint_weight: float,
) -> np.ndarray:
    """Objective on the internal node-major ``(n_nodes, B, 2)`` layout."""
    diff = pts_t[edges.pairs[:, 0]] - pts_t[edges.pairs[:, 1]]
    comp = np.hypot(diff[..., 0], diff[..., 1])
    value = np.sum(edges.weights[:, None] * (comp - edges.distances[:, None]) ** 2, axis=0)
    if min_spacing_m is not None and constraint_pairs is not None and constraint_pairs.size:
        cdiff = pts_t[constraint_pairs[:, 0]] - pts_t[constraint_pairs[:, 1]]
        ccomp = np.hypot(cdiff[..., 0], cdiff[..., 1])
        violation = np.minimum(ccomp, min_spacing_m) - min_spacing_m
        value = value + constraint_weight * np.sum(violation**2, axis=0)
    return value


def batch_lss_gradient(
    configs: np.ndarray,
    edges,
    *,
    constraint_pairs: Optional[np.ndarray] = None,
    min_spacing_m: Optional[float] = None,
    constraint_weight: float = 10.0,
    backend=None,
) -> np.ndarray:
    """Gradient of the LSS objective for stacked configurations.

    Shape ``(B, n_nodes, 2)``; the scatter-accumulation runs in edge
    order per configuration, mirroring the scalar
    :func:`repro.core.lss.lss_gradient`.
    """
    pts = np.asarray(configs, dtype=float)
    be = resolve_backend(backend)
    if not be.is_native_numpy:
        return xp_kernels.lss_gradient_xp(
            be, pts, edges, constraint_pairs, min_spacing_m, constraint_weight
        )
    grad_t = _lss_gradient_t(pts.transpose(1, 0, 2), edges, constraint_pairs,
                             min_spacing_m, constraint_weight)
    return grad_t.transpose(1, 0, 2)


def _lss_gradient_t(
    pts_t: np.ndarray,
    edges,
    constraint_pairs: Optional[np.ndarray],
    min_spacing_m: Optional[float],
    constraint_weight: float,
) -> np.ndarray:
    """Gradient on the internal node-major ``(n_nodes, B, 2)`` layout."""
    grad_t = np.zeros(pts_t.shape)

    i_idx = edges.pairs[:, 0]
    j_idx = edges.pairs[:, 1]
    diff = pts_t[i_idx] - pts_t[j_idx]
    comp = np.hypot(diff[..., 0], diff[..., 1])
    safe = np.maximum(comp, 1e-12)
    coeff = (2.0 * edges.weights[:, None]) * (comp - edges.distances[:, None]) / safe
    contrib = coeff[..., None] * diff
    np.add.at(grad_t, i_idx, contrib)
    np.add.at(grad_t, j_idx, -contrib)

    if min_spacing_m is not None and constraint_pairs is not None and constraint_pairs.size:
        ci = constraint_pairs[:, 0]
        cj = constraint_pairs[:, 1]
        cdiff = pts_t[ci] - pts_t[cj]
        ccomp = np.hypot(cdiff[..., 0], cdiff[..., 1])
        vcomp = np.maximum(ccomp, 1e-12)
        vcoeff = 2.0 * constraint_weight * (vcomp - min_spacing_m) / vcomp
        # Only violated pairs (estimate closer than d_min) exert force.
        vcoeff = np.where(ccomp < min_spacing_m, vcoeff, 0.0)
        vcontrib = vcoeff[..., None] * cdiff
        np.add.at(grad_t, ci, vcontrib)
        np.add.at(grad_t, cj, -vcontrib)
    return grad_t


def batch_lss_descend(
    configs: np.ndarray,
    edges,
    constraint_pairs: Optional[np.ndarray],
    *,
    min_spacing_m: Optional[float],
    constraint_weight: float,
    step_size: float,
    max_epochs: int,
    tolerance: float,
    free_mask: np.ndarray,
    traces: Optional[List[List[float]]] = None,
    momentum: float = 0.9,
    patience: int = 50,
    backend=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One momentum-gradient-descent round over stacked configurations.

    Each configuration follows the identical accept/reject schedule of
    the scalar round (``repro.core.lss._descend_scalar``): x1.05 step on
    improvement, /2 with momentum reset on overshoot, early stop after
    *patience* stalled epochs or when the step underflows.  Finished
    configurations freeze while the rest keep descending.

    Parameters
    ----------
    configs : ndarray of shape (B, n_nodes, 2)
    free_mask : ndarray of bool, shape (n_nodes,)
        Nodes free to move (False rows are pinned).
    traces : list of B lists, optional
        Per-configuration error traces, appended in place (one value per
        epoch the configuration was still active).

    Returns ``(configs (B, n, 2), errors (B,), converged (B,))``.
    """
    be = resolve_backend(backend)
    if not be.is_native_numpy:
        pts, current, converged, epochs = xp_kernels.lss_descend_xp(
            be,
            np.asarray(configs, dtype=float),
            edges,
            constraint_pairs,
            min_spacing_m=min_spacing_m,
            constraint_weight=constraint_weight,
            step_size=step_size,
            max_epochs=max_epochs,
            tolerance=tolerance,
            free_mask=np.asarray(free_mask, dtype=bool),
            traces=traces,
            momentum=momentum,
            patience=patience,
        )
        _count_kernel("lss", pts.shape[0], epochs)
        return pts, current, converged
    # Node-major (n_nodes, B, 2) layout: fancy-indexing edge endpoints
    # and np.add.at scatter both address the leading axis directly.
    pts_t = np.ascontiguousarray(
        np.asarray(configs, dtype=float).transpose(1, 0, 2)
    )
    n_batch = pts_t.shape[1]
    frozen = ~free_mask
    current = _lss_error_t(pts_t, edges, constraint_pairs, min_spacing_m, constraint_weight)
    alpha = np.full(n_batch, float(step_size))
    velocity = np.zeros_like(pts_t)
    stall = np.zeros(n_batch, dtype=np.int64)
    active = np.ones(n_batch, dtype=bool)
    converged = np.zeros(n_batch, dtype=bool)
    epochs_run = 0

    for _ in range(max_epochs):
        epochs_run += 1
        grad = _lss_gradient_t(pts_t, edges, constraint_pairs, min_spacing_m, constraint_weight)
        grad[frozen] = 0.0
        velocity_new = momentum * velocity - alpha[None, :, None] * grad
        candidate = pts_t + velocity_new
        value = _lss_error_t(candidate, edges, constraint_pairs, min_spacing_m, constraint_weight)
        improvement = (current - value) / np.maximum(current, 1e-12)
        improved = active & (value < current)
        rejected = active & ~improved

        np.copyto(pts_t, candidate, where=improved[None, :, None])
        np.copyto(current, value, where=improved)
        # Overshoot kills the momentum (scalar rule); frozen problems'
        # velocities are junk but can never touch pts_t again.
        np.copyto(velocity_new, 0.0, where=rejected[None, :, None])
        velocity = velocity_new
        alpha *= np.where(improved, 1.05, np.where(rejected, 0.5, 1.0))
        stall += rejected | (improved & (improvement < tolerance))
        np.copyto(stall, 0, where=improved & (improvement >= tolerance))

        if traces is not None:
            for b in np.nonzero(active)[0]:
                traces[b].append(float(current[b]))

        underflow = rejected & (alpha < 1e-14)
        exhausted = active & (stall >= patience) & ~underflow
        newly_done = underflow | exhausted
        converged |= newly_done
        active &= ~newly_done
        if not active.any():
            break
    _count_kernel("lss", n_batch, epochs_run)
    return pts_t.transpose(1, 0, 2), current, converged


# ---------------------------------------------------------------------------
# Padded heterogeneous LSS (Section 4.3's local maps)
# ---------------------------------------------------------------------------


def _require_constraint_mask(constraint_pairs, constraint_valid) -> None:
    """Padded constraint stacks are meaningless without their mask.

    A padded ``(0, 0)`` constraint pair has distance zero — a maximal
    "violation" — so silently treating an omitted mask as all-valid (or
    worse, as all-invalid) would corrupt the objective.  Force callers
    to be explicit.
    """
    if constraint_pairs is not None and constraint_valid is None:
        raise ValidationError(
            "constraint_valid is required when constraint_pairs are given "
            "(padded slots must be masked explicitly)"
        )


def _flat_endpoints(
    index_pairs: np.ndarray, n_nodes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten ``(B, E, 2)`` endpoint pairs into ``(B*N)``-space indices.

    Gathering through one flat advanced index on the ``(B*N, 2)`` view
    of the configuration stack is measurably cheaper per epoch than a
    broadcasted two-axis fancy index, and the same flat indices drive
    the bincount scatter.
    """
    base = np.arange(index_pairs.shape[0], dtype=np.int64)[:, None] * n_nodes
    return base + index_pairs[..., 0], base + index_pairs[..., 1]


def _lss_error_flat(
    flat_pts: np.ndarray,
    fi: np.ndarray,
    fj: np.ndarray,
    dists: np.ndarray,
    weights: np.ndarray,
    cfi: Optional[np.ndarray],
    cfj: Optional[np.ndarray],
    constraint_valid: Optional[np.ndarray],
    min_spacing_m: Optional[float],
    constraint_weight: float,
) -> np.ndarray:
    """Objective on the flat ``(B*N, 2)`` view; ``fi``/``fj`` are (B, E)."""
    diff = flat_pts[fi] - flat_pts[fj]
    comp = np.hypot(diff[..., 0], diff[..., 1])
    value = np.sum(weights * (comp - dists) ** 2, axis=1)
    if cfi is not None:
        cdiff = flat_pts[cfi] - flat_pts[cfj]
        ccomp = np.hypot(cdiff[..., 0], cdiff[..., 1])
        violation = np.minimum(ccomp, min_spacing_m) - min_spacing_m
        # Padded constraint slots reference node 0 twice (distance 0 =
        # maximal "violation"), so they MUST be masked out explicitly.
        violation = np.where(constraint_valid, violation, 0.0)
        value = value + constraint_weight * np.sum(violation**2, axis=1)
    return value


def _lss_error_padded(
    pts: np.ndarray,
    pairs: np.ndarray,
    dists: np.ndarray,
    weights: np.ndarray,
    constraint_pairs: Optional[np.ndarray],
    constraint_valid: Optional[np.ndarray],
    min_spacing_m: Optional[float],
    constraint_weight: float,
) -> np.ndarray:
    """Objective on the padded batch-major ``(B, N, 2)`` layout."""
    n_nodes = pts.shape[1]
    fi, fj = _flat_endpoints(pairs, n_nodes)
    cfi = cfj = None
    if (
        min_spacing_m is not None
        and constraint_pairs is not None
        and constraint_pairs.size
    ):
        cfi, cfj = _flat_endpoints(constraint_pairs, n_nodes)
    else:
        constraint_valid = None
    return _lss_error_flat(
        np.ascontiguousarray(pts).reshape(-1, 2),
        fi,
        fj,
        dists,
        weights,
        cfi,
        cfj,
        constraint_valid,
        min_spacing_m,
        constraint_weight,
    )


def batch_lss_error_padded(
    configs: np.ndarray,
    pairs: np.ndarray,
    dists: np.ndarray,
    weights: np.ndarray,
    *,
    constraint_pairs: Optional[np.ndarray] = None,
    constraint_valid: Optional[np.ndarray] = None,
    min_spacing_m: Optional[float] = None,
    constraint_weight: float = 10.0,
    backend=None,
) -> np.ndarray:
    """LSS objective for a batch of *heterogeneous* problems, shape (B,).

    Parameters
    ----------
    configs : ndarray of shape (B, N, 2)
        Stacked configurations; problem ``b`` uses rows ``0..n_b`` and
        the rest is padding (never referenced by real edges).
    pairs : ndarray of int, shape (B, E, 2)
        Per-problem edge endpoints in local indices; padded rows may
        point anywhere valid (conventionally ``(0, 0)``).
    dists, weights : ndarray of shape (B, E)
        Measured distances and weights; padded slots carry zero weight
        (and zero distance), so they contribute exactly ``0.0``.
    constraint_pairs : ndarray of int, shape (B, C, 2), optional
        Per-problem soft-constraint pairs (unmeasured pairs closer than
        ``min_spacing_m`` are penalized, Section 4.2's folding fix).
    constraint_valid : ndarray of bool, shape (B, C), optional
        Mask of real constraint slots; required when constraints are
        padded, because a padded ``(0, 0)`` pair has distance zero and
        would otherwise register as a maximal violation.

    Per problem this is the same reduction as
    :func:`repro.core.lss.lss_error` on the unpadded edge list.
    """
    pts = np.asarray(configs, dtype=float)
    _require_constraint_mask(constraint_pairs, constraint_valid)
    be = resolve_backend(backend)
    if not be.is_native_numpy:
        return xp_kernels.lss_error_padded_xp(
            be, pts, np.asarray(pairs), np.asarray(dists, dtype=float),
            np.asarray(weights, dtype=float),
            constraint_pairs, constraint_valid, min_spacing_m, constraint_weight,
        )
    return _lss_error_padded(
        pts,
        np.asarray(pairs),
        np.asarray(dists, dtype=float),
        np.asarray(weights, dtype=float),
        constraint_pairs,
        constraint_valid,
        min_spacing_m,
        constraint_weight,
    )


def _scatter_flat(
    flat_grad: np.ndarray,
    scatter_idx: np.ndarray,
    contrib: np.ndarray,
) -> None:
    """Accumulate ``[+contrib, -contrib]`` rows at flat *scatter_idx*.

    ``scatter_idx`` is the precomputed concatenation of the ``i`` and
    ``j`` flat endpoints; a ``np.bincount`` per coordinate is
    substantially faster than ``np.add.at`` on the many-small-problems
    stacks this layout exists for.
    """
    size = flat_grad.shape[0]
    flat_contrib = contrib.reshape(-1, 2)
    signed_x = np.concatenate([flat_contrib[:, 0], -flat_contrib[:, 0]])
    signed_y = np.concatenate([flat_contrib[:, 1], -flat_contrib[:, 1]])
    flat_grad[:, 0] += np.bincount(scatter_idx, weights=signed_x, minlength=size)
    flat_grad[:, 1] += np.bincount(scatter_idx, weights=signed_y, minlength=size)


def _lss_gradient_flat(
    flat_pts: np.ndarray,
    fi: np.ndarray,
    fj: np.ndarray,
    edge_scatter: np.ndarray,
    dists: np.ndarray,
    weights: np.ndarray,
    cfi: Optional[np.ndarray],
    cfj: Optional[np.ndarray],
    constraint_scatter: Optional[np.ndarray],
    constraint_valid: Optional[np.ndarray],
    min_spacing_m: Optional[float],
    constraint_weight: float,
) -> np.ndarray:
    """Gradient on the flat ``(B*N, 2)`` view.

    ``edge_scatter``/``constraint_scatter`` are the precomputed
    ``concatenate([fi.ravel(), fj.ravel()])`` index vectors (rebuilt
    only when the working batch is compacted).
    """
    grad = np.zeros_like(flat_pts)
    diff = flat_pts[fi] - flat_pts[fj]
    comp = np.hypot(diff[..., 0], diff[..., 1])
    safe = np.maximum(comp, 1e-12)
    coeff = (2.0 * weights) * (comp - dists) / safe
    _scatter_flat(grad, edge_scatter, coeff[..., None] * diff)

    if cfi is not None:
        cdiff = flat_pts[cfi] - flat_pts[cfj]
        ccomp = np.hypot(cdiff[..., 0], cdiff[..., 1])
        vcomp = np.maximum(ccomp, 1e-12)
        vcoeff = 2.0 * constraint_weight * (vcomp - min_spacing_m) / vcomp
        # Only violated real pairs exert force; padded slots are masked.
        active = (ccomp < min_spacing_m) & constraint_valid
        vcoeff = np.where(active, vcoeff, 0.0)
        _scatter_flat(grad, constraint_scatter, vcoeff[..., None] * cdiff)
    return grad


def _lss_gradient_padded(
    pts: np.ndarray,
    pairs: np.ndarray,
    dists: np.ndarray,
    weights: np.ndarray,
    constraint_pairs: Optional[np.ndarray],
    constraint_valid: Optional[np.ndarray],
    min_spacing_m: Optional[float],
    constraint_weight: float,
) -> np.ndarray:
    """Gradient on the padded batch-major ``(B, N, 2)`` layout."""
    shape = pts.shape
    n_nodes = shape[1]
    fi, fj = _flat_endpoints(pairs, n_nodes)
    edge_scatter = np.concatenate([fi.ravel(), fj.ravel()])
    cfi = cfj = constraint_scatter = None
    if (
        min_spacing_m is not None
        and constraint_pairs is not None
        and constraint_pairs.size
    ):
        cfi, cfj = _flat_endpoints(constraint_pairs, n_nodes)
        constraint_scatter = np.concatenate([cfi.ravel(), cfj.ravel()])
    else:
        constraint_valid = None
    flat_grad = _lss_gradient_flat(
        np.ascontiguousarray(pts).reshape(-1, 2),
        fi,
        fj,
        edge_scatter,
        dists,
        weights,
        cfi,
        cfj,
        constraint_scatter,
        constraint_valid,
        min_spacing_m,
        constraint_weight,
    )
    return flat_grad.reshape(shape)


def batch_lss_gradient_padded(
    configs: np.ndarray,
    pairs: np.ndarray,
    dists: np.ndarray,
    weights: np.ndarray,
    *,
    constraint_pairs: Optional[np.ndarray] = None,
    constraint_valid: Optional[np.ndarray] = None,
    min_spacing_m: Optional[float] = None,
    constraint_weight: float = 10.0,
    backend=None,
) -> np.ndarray:
    """Gradient of the heterogeneous LSS objective, shape (B, N, 2).

    See :func:`batch_lss_error_padded` for the layout.  Padded edge
    slots carry zero weight, so rows beyond each problem's real node
    count receive an exact zero gradient and never move.
    """
    pts = np.asarray(configs, dtype=float)
    _require_constraint_mask(constraint_pairs, constraint_valid)
    be = resolve_backend(backend)
    if not be.is_native_numpy:
        return xp_kernels.lss_gradient_padded_xp(
            be, pts, np.asarray(pairs), np.asarray(dists, dtype=float),
            np.asarray(weights, dtype=float),
            constraint_pairs, constraint_valid, min_spacing_m, constraint_weight,
        )
    return _lss_gradient_padded(
        pts,
        np.asarray(pairs),
        np.asarray(dists, dtype=float),
        np.asarray(weights, dtype=float),
        constraint_pairs,
        constraint_valid,
        min_spacing_m,
        constraint_weight,
    )


def batch_lss_descend_padded(
    configs: np.ndarray,
    pairs: np.ndarray,
    dists: np.ndarray,
    weights: np.ndarray,
    *,
    constraint_pairs: Optional[np.ndarray] = None,
    constraint_valid: Optional[np.ndarray] = None,
    min_spacing_m: Optional[float] = None,
    constraint_weight: float = 10.0,
    step_size: float = 0.02,
    max_epochs: int = 2000,
    tolerance: float = 1e-7,
    momentum: float = 0.9,
    patience: int = 50,
    backend=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One momentum-descent round over a batch of heterogeneous problems.

    The padded sibling of :func:`batch_lss_descend`: each problem
    follows the identical accept/reject schedule of the scalar round
    (``repro.core.lss._descend_scalar``: x1.05 step on improvement, /2
    with momentum reset on overshoot, early stop after *patience*
    stalled epochs or step underflow) on its own adaptive step size.
    Finished problems freeze while the rest keep descending.

    Returns ``(configs (B, N, 2), errors (B,), converged (B,))``.
    Finished problems are compacted out of the working batch (the same
    straggler treatment as :func:`batch_gradient_descent`), so a few
    slow neighborhoods do not drag the whole stack's per-epoch cost.
    """
    be = resolve_backend(backend)
    if not be.is_native_numpy:
        _require_constraint_mask(constraint_pairs, constraint_valid)
        out_pts, out_err, out_conv, epochs = xp_kernels.lss_descend_padded_xp(
            be,
            np.asarray(configs, dtype=float),
            np.asarray(pairs),
            np.asarray(dists, dtype=float),
            np.asarray(weights, dtype=float),
            constraint_pairs=constraint_pairs,
            constraint_valid=constraint_valid,
            min_spacing_m=min_spacing_m,
            constraint_weight=constraint_weight,
            step_size=step_size,
            max_epochs=max_epochs,
            tolerance=tolerance,
            momentum=momentum,
            patience=patience,
        )
        _count_kernel("lss_padded", out_pts.shape[0], epochs, 0)
        return out_pts, out_err, out_conv
    pts = np.array(configs, dtype=float)
    total, n_nodes = pts.shape[:2]
    pts_out = pts.copy()
    err_out = np.empty(total)
    conv_out = np.zeros(total, dtype=bool)
    if total == 0:
        return pts_out, err_out, conv_out

    _require_constraint_mask(constraint_pairs, constraint_valid)
    has_constraints = (
        min_spacing_m is not None
        and constraint_pairs is not None
        and np.asarray(constraint_pairs).size
    )
    cpairs = np.asarray(constraint_pairs) if has_constraints else None
    cvalid = np.asarray(constraint_valid) if has_constraints else None

    def flatten(pair_stack):
        fi, fj = _flat_endpoints(pair_stack, n_nodes)
        return fi, fj, np.concatenate([fi.ravel(), fj.ravel()])

    fi, fj, edge_scatter = flatten(pairs)
    cfi = cfj = constraint_scatter = None
    if has_constraints:
        cfi, cfj, constraint_scatter = flatten(cpairs)

    remaining = np.arange(total)
    flat_pts = pts.reshape(-1, 2)
    current = _lss_error_flat(
        flat_pts, fi, fj, dists, weights, cfi, cfj, cvalid,
        min_spacing_m, constraint_weight,
    )
    err_out[:] = current
    alpha = np.full(total, float(step_size))
    velocity = np.zeros_like(pts)
    stall = np.zeros(total, dtype=np.int64)
    epochs_run = 0
    compactions = 0

    for _ in range(max_epochs):
        epochs_run += 1
        flat_grad = _lss_gradient_flat(
            flat_pts, fi, fj, edge_scatter, dists, weights,
            cfi, cfj, constraint_scatter, cvalid,
            min_spacing_m, constraint_weight,
        )
        velocity = momentum * velocity - alpha[:, None, None] * flat_grad.reshape(
            pts.shape
        )
        candidate = pts + velocity
        value = _lss_error_flat(
            candidate.reshape(-1, 2), fi, fj, dists, weights, cfi, cfj, cvalid,
            min_spacing_m, constraint_weight,
        )
        improvement = (current - value) / np.maximum(current, 1e-12)
        improved = value < current
        rejected = ~improved

        np.copyto(pts, candidate, where=improved[:, None, None])
        np.copyto(current, value, where=improved)
        # Overshoot kills the momentum (scalar rule).
        np.copyto(velocity, 0.0, where=rejected[:, None, None])
        alpha *= np.where(improved, 1.05, 0.5)
        stall += rejected | (improved & (improvement < tolerance))
        np.copyto(stall, 0, where=improved & (improvement >= tolerance))

        finished = (rejected & (alpha < 1e-14)) | (stall >= patience)
        if finished.any():
            compactions += 1
            done_idx = remaining[finished]
            pts_out[done_idx] = pts[finished]
            err_out[done_idx] = current[finished]
            conv_out[done_idx] = True
            keep = ~finished
            if not keep.any():
                _count_kernel("lss_padded", total, epochs_run, compactions)
                return pts_out, err_out, conv_out
            remaining = remaining[keep]
            pts = np.ascontiguousarray(pts[keep])
            current = current[keep]
            alpha = alpha[keep]
            velocity = np.ascontiguousarray(velocity[keep])
            stall = stall[keep]
            pairs = pairs[keep]
            dists = dists[keep]
            weights = weights[keep]
            fi, fj, edge_scatter = flatten(pairs)
            if has_constraints:
                cpairs = cpairs[keep]
                cvalid = cvalid[keep]
                cfi, cfj, constraint_scatter = flatten(cpairs)
        flat_pts = pts.reshape(-1, 2)

    pts_out[remaining] = pts
    err_out[remaining] = current
    _count_kernel("lss_padded", total, epochs_run, compactions)
    return pts_out, err_out, conv_out


def lss_localize_multistart(
    measurements,
    n_nodes: int,
    *,
    config=None,
    seeds: Sequence,
    initial: Optional[np.ndarray] = None,
    fixed_positions: Optional[Dict[int, Sequence[float]]] = None,
    backend=None,
) -> list:
    """Run independent seeded LSS minimizations in vectorized lockstep.

    Semantically identical to calling :func:`repro.core.lss.lss_localize`
    once per entry of *seeds* (each seed drives its own initialization
    and perturbation-restart stream), but all configurations advance
    through each restart round in one stacked
    :func:`batch_lss_descend` call.  Returns one ``LssResult`` per seed,
    in order.
    """
    from ..core.lss import (
        LssConfig,
        LssResult,
        _constraint_pairs,
        _prepare_edges,
        lss_error,
    )
    from .._validation import as_positions, ensure_rng

    config = config if config is not None else LssConfig()
    if config.backend != "gd":
        raise ValidationError(
            "lss_localize_multistart supports only the 'gd' backend; "
            f"got {config.backend!r}"
        )
    if len(seeds) == 0:
        raise ValidationError("seeds must contain at least one entry")
    rngs = [ensure_rng(seed) for seed in seeds]
    n_batch = len(rngs)
    edges = _prepare_edges(measurements, n_nodes)

    constraint_pairs = None
    if config.min_spacing_m is not None:
        constraint_pairs = _constraint_pairs(n_nodes, edges.pairs)

    span = config.init_span_m
    if span is None:
        span = max(1.0, float(np.median(edges.distances)) * math.sqrt(n_nodes))

    free_mask = np.ones(n_nodes, dtype=bool)
    pins: Dict[int, np.ndarray] = {}
    if fixed_positions:
        for node_id, pos in fixed_positions.items():
            node_id = int(node_id)
            if not 0 <= node_id < n_nodes:
                raise ValidationError(f"fixed node id {node_id} outside [0, {n_nodes})")
            arr = np.asarray(pos, dtype=float)
            if arr.shape != (2,):
                raise ValidationError("fixed positions must be (x, y) pairs")
            pins[node_id] = arr
            free_mask[node_id] = False

    pts = np.empty((n_batch, n_nodes, 2))
    if initial is not None:
        start = as_positions(initial, "initial").copy()
        if start.shape != (n_nodes, 2):
            raise ValidationError(f"initial must have shape ({n_nodes}, 2)")
        pts[:] = start
    else:
        for b, rng in enumerate(rngs):
            pts[b] = rng.uniform(0.0, span, size=(n_nodes, 2))
    for node_id, arr in pins.items():
        pts[:, node_id] = arr

    kwargs = dict(
        constraint_pairs=constraint_pairs,
        min_spacing_m=config.min_spacing_m,
        constraint_weight=config.constraint_weight,
    )
    traces: List[List[float]] = [[] for _ in range(n_batch)]
    boundaries: List[List[int]] = [[] for _ in range(n_batch)]
    best_pts = pts.copy()
    best_error = batch_lss_error(pts, edges, backend=backend, **kwargs)
    converged = np.zeros(n_batch, dtype=bool)
    for round_index in range(config.restarts):
        for b in range(n_batch):
            boundaries[b].append(len(traces[b]))
        if round_index == 0:
            seed_pts = best_pts.copy()
        else:
            seed_pts = np.empty_like(best_pts)
            for b, rng in enumerate(rngs):
                seed_pts[b] = best_pts[b] + rng.normal(
                    0.0, config.perturbation_m, size=(n_nodes, 2)
                )
            for node_id, arr in pins.items():
                seed_pts[:, node_id] = arr
        out_pts, out_error, converged = batch_lss_descend(
            seed_pts,
            edges,
            constraint_pairs,
            min_spacing_m=config.min_spacing_m,
            constraint_weight=config.constraint_weight,
            step_size=config.step_size,
            max_epochs=config.max_epochs,
            tolerance=config.tolerance,
            free_mask=free_mask,
            traces=traces,
            backend=backend,
        )
        better = out_error < best_error
        best_pts = np.where(better[:, None, None], out_pts, best_pts)
        best_error = np.where(better, out_error, best_error)

    results = []
    for b in range(n_batch):
        stress = lss_error(
            best_pts[b],
            edges,
            constraint_pairs=None,
            min_spacing_m=None,
            constraint_weight=0.0,
        )
        results.append(
            LssResult(
                positions=np.asarray(best_pts[b], dtype=float),
                error=float(best_error[b]),
                stress=float(stress),
                error_trace=np.asarray(traces[b], dtype=float),
                round_boundaries=boundaries[b],
                epochs_run=len(traces[b]),
                converged=bool(converged[b]),
            )
        )
    return results
