"""Ready-made Monte-Carlo trial functions for the campaign runner.

Each function is a module-level callable (picklable, so it fans out
across :mod:`multiprocessing` workers) with the campaign contract
``trial_fn(rng, **kwargs) -> Dict[str, float]``: it draws a fresh
randomized deployment, noise realization, and anchor set from *rng*,
runs one localization pipeline through the batched engine, and returns
scalar metrics for aggregation.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core import LssConfig, evaluate_localization, localize_network, lss_localize
from ..core.aps import dv_hop_localize
from ..deploy import random_anchors, uniform_random_layout
from ..ranging import gaussian_ranges

__all__ = ["multilateration_trial", "lss_trial", "dv_hop_trial"]


def _fraction(numerator, denominator) -> float:
    """Safe coverage ratio: nan when the trial has no non-anchor nodes,
    so a degenerate draw yields nan metrics (excluded from aggregates)
    instead of crashing the campaign."""
    denominator = float(denominator)
    if denominator == 0.0:
        return float("nan")
    return float(numerator) / denominator


def _network_draw(
    rng,
    n_nodes: int,
    width_m: float,
    height_m: float,
    min_separation_m: float,
    max_range_m: float,
    sigma_m: float,
):
    positions = uniform_random_layout(
        n_nodes,
        width_m=width_m,
        height_m=height_m,
        min_separation_m=min_separation_m,
        rng=rng,
    )
    ranges = gaussian_ranges(
        positions, max_range_m=max_range_m, sigma_m=sigma_m, rng=rng
    )
    return positions, ranges


def multilateration_trial(
    rng,
    *,
    n_nodes: int = 36,
    n_anchors: int = 10,
    width_m: float = 60.0,
    height_m: float = 60.0,
    min_separation_m: float = 4.0,
    max_range_m: float = 22.0,
    sigma_m: float = 0.33,
    solver: str = "gradient",
) -> Dict[str, float]:
    """One randomized multilateration trial (Fig. 20's shape).

    Draws a uniform random deployment with noisy synthetic ranges,
    localizes through :func:`repro.core.localize_network`, and reports
    coverage and error statistics over the localized non-anchors.
    """
    positions, ranges = _network_draw(
        rng, n_nodes, width_m, height_m, min_separation_m, max_range_m, sigma_m
    )
    anchor_idx = random_anchors(n_nodes, n_anchors, rng=rng)
    anchor_positions = {int(i): positions[i] for i in anchor_idx}
    result = localize_network(ranges, anchor_positions, n_nodes, solver=solver)
    non_anchor = ~result.is_anchor
    localized = result.localized & non_anchor
    report = evaluate_localization(result.positions[localized], positions[localized])
    return {
        "fraction_localized": _fraction(localized.sum(), non_anchor.sum()),
        "mean_error_m": report.average_error,
        "median_error_m": report.median_error,
        "average_anchors_per_node": result.average_anchors_per_node,
    }


def lss_trial(
    rng,
    *,
    n_nodes: int = 25,
    width_m: float = 50.0,
    height_m: float = 50.0,
    min_separation_m: float = 6.0,
    max_range_m: float = 22.0,
    sigma_m: float = 0.33,
    min_spacing_m: float = 6.0,
    restarts: int = 4,
    max_epochs: int = 800,
) -> Dict[str, float]:
    """One randomized anchor-free LSS trial (Fig. 21's shape).

    Runs constrained centralized LSS on a random deployment and reports
    aligned error statistics plus minimization cost.
    """
    positions, ranges = _network_draw(
        rng, n_nodes, width_m, height_m, min_separation_m, max_range_m, sigma_m
    )
    config = LssConfig(
        min_spacing_m=min_spacing_m, restarts=restarts, max_epochs=max_epochs
    )
    result = lss_localize(ranges, n_nodes, config=config, rng=rng)
    report = evaluate_localization(result.positions, positions, align=True)
    return {
        "mean_error_m": report.average_error,
        "median_error_m": report.median_error,
        "final_objective": result.error,
        "epochs_run": float(result.epochs_run),
    }


def dv_hop_trial(
    rng,
    *,
    n_nodes: int = 36,
    n_anchors: int = 8,
    width_m: float = 60.0,
    height_m: float = 60.0,
    min_separation_m: float = 4.0,
    max_range_m: float = 14.0,
    sigma_m: float = 0.33,
    solver: str = "lm",
) -> Dict[str, float]:
    """One randomized DV-hop baseline trial (Section 2's APS family)."""
    positions, ranges = _network_draw(
        rng, n_nodes, width_m, height_m, min_separation_m, max_range_m, sigma_m
    )
    anchor_idx = random_anchors(n_nodes, n_anchors, rng=rng)
    anchor_positions = {int(i): positions[i] for i in anchor_idx}
    result = dv_hop_localize(ranges, anchor_positions, n_nodes, solver=solver)
    non_anchor = ~result.is_anchor
    localized = result.localized & non_anchor
    report = evaluate_localization(result.positions[localized], positions[localized])
    return {
        "fraction_localized": _fraction(localized.sum(), non_anchor.sum()),
        "mean_error_m": report.average_error,
        "median_error_m": report.median_error,
    }
