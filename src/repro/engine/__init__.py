"""repro.engine — the vectorized batch execution layer.

The paper's headline results are statistics over many randomized
localization trials, but the reference solvers in :mod:`repro.core`
work one node (multilateration) or one configuration (LSS) at a time.
This subsystem provides the batched substrate those campaigns run on:

:mod:`repro.engine.batch`
    Stacked NumPy solvers.  Multilateration problems for a whole
    refinement round are packed into padded ``(n_problems, max_anchors,
    2)`` arrays with a validity mask and minimized in one vectorized
    adaptive-gradient-descent loop; LSS objective/gradient/descent
    kernels operate on ``(n_configs, n_nodes, 2)`` stacked
    configurations, so independent restarts or seeds advance in
    lockstep.  The ``*_padded`` variants stack *heterogeneous* LSS
    problems (per-problem node counts, edge lists, and constraint sets,
    padded with exact-zero slots) for the distributed pipeline.
:mod:`repro.engine.localmaps`
    The distributed-LSS local-map solver: every node's one-hop
    neighborhood problem of a refinement round advances through its
    perturbation-restart rounds in one stacked descent
    (:func:`solve_local_lss_stack`), the path
    ``repro.core.distributed`` routes through by default.
:mod:`repro.engine.campaign`
    A seeded Monte-Carlo campaign runner: independent trials fan out
    across ``multiprocessing`` workers, each trial drawing its own
    :class:`numpy.random.Generator` from a ``SeedSequence`` child of the
    master seed, and per-metric statistics are aggregated in trial
    order so results are reproducible bit-for-bit regardless of worker
    count.
:mod:`repro.engine.trials`
    Ready-made, picklable trial functions (multilateration, LSS, APS)
    for campaigns.
:mod:`repro.engine.scheduler`
    The adaptive sibling of the campaign runner: trial chunks stream
    through the pool and the campaign stops early once a
    confidence-interval criterion on the target metric is met, while
    committed records remain a bit-identical prefix of the same-seed
    fixed-count campaign.

Batching layout
---------------
A batch of ``B`` multilateration problems with at most ``K`` anchors
each is four arrays: ``anchors (B, K, 2)``, ``distances (B, K)``,
``weights (B, K)`` and a boolean ``valid (B, K)`` mask.  Padded slots
carry zero weight, so they contribute exactly ``0.0`` to every
objective, gradient, and centroid computation — the padded problem is
numerically identical to the unpadded one.  Solved problems are
compacted out of the working arrays, so stragglers near the iteration
cap do not drag the whole batch's per-iteration cost with them.

Scalar/batched parity contract
------------------------------
For every batched kernel the per-problem update rule, acceptance test,
and termination condition are *the same operations in the same order*
as the scalar reference path (``repro.core.multilateration`` with
``solver="scalar"``; ``repro.core.lss`` with ``backend="gd-scalar"``;
``repro.core.distributed`` with ``solver="scalar"``).  Batched and
scalar runs from the same seed must therefore agree to floating-point
reduction tolerance; ``tests/test_engine_batch.py`` enforces this on
fixed-seed grid, random, and sparse networks.  The one deliberate
exception is the distributed pipeline's *multi-problem* orchestration:
its batched path phases residual-trim refits after all first fits
instead of interleaving them per map, so it consumes perturbation
randomness in a different order and agrees with the scalar loop to
solver tolerance instead (``tests/test_distributed.py``).  The scalar
paths stay in the tree precisely to keep these contracts testable.
"""

from .backend import (
    ARRAY_BACKEND_ENV_VAR,
    ArrayBackend,
    available_backends,
    default_backend_name,
    get_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from .batch import (
    batch_gradient_descent,
    batch_lss_descend,
    batch_lss_descend_padded,
    batch_lss_error,
    batch_lss_error_padded,
    batch_lss_gradient,
    batch_lss_gradient_padded,
    consistency_filter_fast,
    lss_localize_multistart,
    solve_multilateration_batch,
)
from .campaign import CampaignResult, TrialRecord, run_monte_carlo
from .localmaps import LocalLssProblem, LocalLssSolution, solve_local_lss_stack
from .scheduler import (
    ConfidenceStop,
    ScheduledCampaignResult,
    resolve_chunk_size,
    run_adaptive,
)
from .sharding import (
    ShardCampaignResult,
    ShardSpec,
    merge_shards,
    plan_shards,
    run_campaign_shard,
    shard_bounds,
)

__all__ = [
    "ARRAY_BACKEND_ENV_VAR",
    "ArrayBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
    "batch_gradient_descent",
    "batch_lss_descend",
    "batch_lss_descend_padded",
    "batch_lss_error",
    "batch_lss_error_padded",
    "batch_lss_gradient",
    "batch_lss_gradient_padded",
    "consistency_filter_fast",
    "lss_localize_multistart",
    "solve_multilateration_batch",
    "LocalLssProblem",
    "LocalLssSolution",
    "solve_local_lss_stack",
    "CampaignResult",
    "TrialRecord",
    "run_monte_carlo",
    "ConfidenceStop",
    "ScheduledCampaignResult",
    "resolve_chunk_size",
    "run_adaptive",
    "ShardSpec",
    "ShardCampaignResult",
    "plan_shards",
    "shard_bounds",
    "run_campaign_shard",
    "merge_shards",
]
