"""Seeded Monte-Carlo campaign runner.

The paper's evaluation style — and the ROADMAP's heavy-traffic goal —
is statistics over many independent randomized trials: re-randomize the
deployment, the noise draws, and the anchor choice; run the localizer;
aggregate the error metrics.  :func:`run_monte_carlo` is the engine for
that shape of workload:

* **Seeding.**  One master seed spawns a ``numpy.random.SeedSequence``
  child per trial, so every trial owns a statistically independent
  stream and the whole campaign is reproducible from a single integer.
* **Fan-out.**  Trials are embarrassingly parallel; with
  ``n_workers > 1`` they are dispatched to a ``multiprocessing`` pool.
  Because each trial's randomness is a function of the master seed and
  its trial index alone — never of scheduling — aggregate statistics
  are bit-for-bit identical for any worker count
  (``tests/test_engine_campaign.py`` pins this).
* **Aggregation.**  Trial metrics are collected in trial order into
  per-metric arrays with mean/median/std/min/max summaries.

Trial functions must be module-level callables (picklable for the
pool) with signature ``trial_fn(rng, **trial_kwargs) -> Mapping[str,
float]``; :mod:`repro.engine.trials` ships ready-made ones.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from .. import telemetry
from ..errors import ValidationError

__all__ = ["TrialRecord", "CampaignResult", "run_monte_carlo"]


@dataclass(frozen=True)
class TrialRecord:
    """Outcome of one Monte-Carlo trial.

    Attributes
    ----------
    index : int
        Trial index in ``[0, n_trials)``; also selects the trial's
        ``SeedSequence`` child.
    metrics : dict
        Metric name -> value as returned by the trial function.
    """

    index: int
    metrics: Dict[str, float]


@dataclass(frozen=True)
class CampaignResult:
    """All trial records of one campaign, with aggregation helpers."""

    master_seed: int
    records: Tuple[TrialRecord, ...]

    @property
    def n_trials(self) -> int:
        return len(self.records)

    @property
    def metric_names(self) -> Tuple[str, ...]:
        names = set()
        for record in self.records:
            names.update(record.metrics)
        return tuple(sorted(names))

    @property
    def n_nan_trials(self) -> int:
        """Trials whose metrics include at least one non-finite or
        missing value — the per-trial view of ``aggregate()``'s
        per-metric ``n_nan`` counts, used by the CLI to flag degraded
        campaigns in the completion output."""
        names = self.metric_names
        if not names:
            return 0
        degraded = 0
        for record in self.records:
            for name in names:
                value = record.metrics.get(name)
                if value is None or not math.isfinite(value):
                    degraded += 1
                    break
        return degraded

    def metric(self, name: str) -> np.ndarray:
        """Per-trial values of one metric, in trial order.

        Trials that did not report the metric contribute nan.
        """
        return np.asarray(
            [record.metrics.get(name, float("nan")) for record in self.records],
            dtype=float,
        )

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """NaN-safe mean/median/std/min/max per metric.

        Degenerate trials (nothing localized, all-anchor draws, missing
        metrics) legitimately report nan; those values must not poison
        the campaign statistics, so every summary is computed over the
        *finite* trial values only.  Each entry reports both ``n`` (how
        many trials produced a finite value) and ``n_nan`` (how many
        were non-finite or missing) — together they always sum to
        ``n_trials``, so degraded campaigns are visible rather than
        silently averaged away.
        """
        out: Dict[str, Dict[str, float]] = {}
        for name in self.metric_names:
            values = self.metric(name)
            finite = values[np.isfinite(values)]
            n_nan = float(values.size - finite.size)
            if finite.size == 0:
                out[name] = {
                    "n": 0.0,
                    "n_nan": n_nan,
                    "mean": float("nan"),
                    "median": float("nan"),
                    "std": float("nan"),
                    "min": float("nan"),
                    "max": float("nan"),
                }
                continue
            out[name] = {
                "n": float(finite.size),
                "n_nan": n_nan,
                "mean": float(finite.mean()),
                "median": float(np.median(finite)),
                "std": float(finite.std()),
                "min": float(finite.min()),
                "max": float(finite.max()),
            }
        return out

    def summary(self) -> str:
        """Human-readable aggregate table."""
        lines = [f"campaign: {self.n_trials} trials, master_seed={self.master_seed}"]
        for name, stats in sorted(self.aggregate().items()):
            nan_note = f" nan={stats['n_nan']:.0f}" if stats["n_nan"] else ""
            lines.append(
                f"  {name:<32s} mean={stats['mean']:.4f} median={stats['median']:.4f} "
                f"std={stats['std']:.4f} n={stats['n']:.0f}{nan_note}"
            )
        return "\n".join(lines)


def _execute_trial(payload) -> TrialRecord:
    """Run one trial from its (fn, index, seed-sequence, kwargs) payload.

    Module-level so the payload round-trips through a multiprocessing
    pool regardless of start method.
    """
    trial_fn, index, seed_seq, kwargs = payload
    rng = np.random.default_rng(seed_seq)
    metrics = trial_fn(rng, **kwargs)
    if not isinstance(metrics, Mapping):
        raise ValidationError(
            f"trial function must return a mapping of metrics; got {type(metrics)!r}"
        )
    return TrialRecord(
        index=index, metrics={str(k): float(v) for k, v in metrics.items()}
    )


def _execute_trial_traced(payload):
    """Run one trial under a worker-local telemetry capture.

    Returns ``(record, worker_data)``: the trial record plus the
    worker recorder's snapshot (kernel counters, solve span, busy
    time).  Module-level for pool picklability, like
    :func:`_execute_trial`.  The explicit :func:`repro.telemetry.capture`
    matters under the ``fork`` start method, where workers inherit a
    copy of the parent's active recorder — writes to that copy would be
    lost; the capture recorder's snapshot travels back instead.
    """
    index = payload[1]
    with telemetry.capture() as cap:
        with cap.span("solve", trial=index):
            record = _execute_trial(payload)
    return record, cap.worker_data()


def _merge_traced_results(results, *, under=None) -> list:
    """Fold ``(record, worker_data)`` pairs into the parent recorder.

    *results* must be in trial-index order (both ``Pool.map`` and the
    inline loop preserve submission order), so the merged trace is
    worker-count independent.
    """
    rec = telemetry.current()
    records = []
    for record, data in results:
        rec.merge_worker(data, under=under)
        rec.observe("engine.campaign.trial_wall_s", data["busy_s"])
        records.append(record)
    return records


def _execute_payloads(
    payloads, n_workers: int, mp_context: Optional[str], *, traced: bool = False
) -> list:
    """Run trial payloads inline (``n_workers == 1``) or over a pool.

    The single execution path for both the full campaign runner and the
    shard runner (:mod:`repro.engine.sharding`): worker fan-out, start-
    method fallback, and pool chunking live here once, so the two paths
    cannot drift apart.

    With ``traced`` (the caller checks the active recorder), each trial
    runs under a worker-local telemetry capture whose snapshot is merged
    back into the parent recorder in trial-index order.
    """
    if n_workers < 1:
        raise ValidationError("n_workers must be >= 1")
    if n_workers == 1:
        if traced:
            return _merge_traced_results(
                [_execute_trial_traced(payload) for payload in payloads]
            )
        return [_execute_trial(payload) for payload in payloads]
    if mp_context is None:
        methods = multiprocessing.get_all_start_methods()
        mp_context = "fork" if "fork" in methods else "spawn"
    ctx = multiprocessing.get_context(mp_context)
    chunksize = max(1, len(payloads) // (4 * n_workers))
    with ctx.Pool(processes=n_workers) as pool:
        if traced:
            return _merge_traced_results(
                pool.map(_execute_trial_traced, payloads, chunksize=chunksize)
            )
        return pool.map(_execute_trial, payloads, chunksize=chunksize)


def run_monte_carlo(
    trial_fn: Callable[..., Mapping[str, float]],
    n_trials: int,
    *,
    master_seed: int = 0,
    n_workers: int = 1,
    trial_kwargs: Optional[Mapping[str, object]] = None,
    mp_context: Optional[str] = None,
) -> CampaignResult:
    """Run *n_trials* independent seeded trials, optionally in parallel.

    Parameters
    ----------
    trial_fn : callable
        ``trial_fn(rng, **trial_kwargs) -> Mapping[str, float]``; must
        be picklable (a module-level function) when ``n_workers > 1``.
        All randomness inside the trial must come from *rng*.
    n_trials : int
        Number of independent trials.
    master_seed : int
        Root of the ``SeedSequence`` tree; trial ``i`` always receives
        child ``i`` regardless of worker count or scheduling.
    n_workers : int
        1 runs inline (no pool); more fans trials out over a
        ``multiprocessing`` pool.
    mp_context : str, optional
        Start method ("fork", "spawn", "forkserver"); defaults to
        "fork" where available (cheap on Linux), else "spawn".
    """
    if n_trials < 1:
        raise ValidationError("n_trials must be >= 1")
    kwargs = dict(trial_kwargs or {})
    children = np.random.SeedSequence(master_seed).spawn(n_trials)
    payloads = [(trial_fn, i, children[i], kwargs) for i in range(n_trials)]
    rec = telemetry.current()
    wall0 = time.perf_counter()
    with rec.span(
        "campaign", mode="fixed", n_trials=int(n_trials), n_workers=int(n_workers)
    ):
        records = _execute_payloads(
            payloads, n_workers, mp_context, traced=rec.active
        )
    if rec.active:
        _record_campaign_metrics(rec, len(records), n_workers, wall0)
    return CampaignResult(master_seed=int(master_seed), records=tuple(records))


def _record_campaign_metrics(rec, n_records: int, n_workers: int, wall0: float) -> None:
    """Campaign-level counters: trial count, worker count, utilization.

    Utilization is total worker busy time (summed root-span wall clock,
    shipped back per trial) over ``elapsed * n_workers`` — 1.0 means the
    pool never idled.
    """
    elapsed = time.perf_counter() - wall0
    rec.count("engine.campaign.trials", n_records)
    rec.gauge("engine.campaign.n_workers", n_workers)
    busy = sum(rec.histograms.get("engine.campaign.trial_wall_s", ()))
    if elapsed > 0:
        rec.gauge(
            "engine.campaign.utilization",
            min(1.0, busy / (elapsed * max(1, n_workers))),
        )
