"""Incremental campaign scheduler with confidence-interval early stopping.

:func:`run_adaptive` is the adaptive sibling of
:func:`repro.engine.campaign.run_monte_carlo`: instead of committing to a
fixed trial count, it streams trial chunks through the worker pool and
stops as soon as a statistical stopping criterion on the target metric
is satisfied — typically long before the worst-case budget on
well-behaved scenarios, while hard scenarios run to the cap.

Early-stopping criterion
------------------------
:class:`ConfidenceStop` stops the campaign when the normal-approximation
confidence interval of the *mean* of one metric is tight enough::

    half_width = z_(1+c)/2 * std(finite values) / sqrt(n_finite)

converged when ``half_width <= tolerance`` (absolute), or
``half_width <= tolerance * |mean|`` with ``relative=True``.  Non-finite
trial values (degenerate draws) are excluded from the interval but still
consume budget; at least ``min_trials`` finite values are required
before the rule may fire.

Determinism contract
--------------------
The scheduler preserves PR 1's seed discipline exactly:

* Trial *i* always receives child *i* of ``SeedSequence(master_seed)``
  — the same stream it would receive from ``run_monte_carlo``, because
  ``SeedSequence.spawn`` keys children by index alone.
* The stopping rule is evaluated only at fixed chunk boundaries, on the
  in-order record prefix, so the number of committed trials is a pure
  function of ``(master_seed, trial_kwargs, stopping, chunk_size)`` —
  never of worker count or scheduling luck.  Workers may speculatively
  execute trials beyond the stopping point (that work is discarded);
  the *committed* records of an early-stopped campaign are therefore a
  bit-identical prefix of the same-seed fixed-count campaign
  (``tests/test_scheduler.py`` pins this).
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, List, Mapping, Optional, Tuple

import numpy as np

from .. import telemetry
from ..errors import ValidationError
from .campaign import (
    CampaignResult,
    TrialRecord,
    _execute_trial,
    _execute_trial_traced,
    _record_campaign_metrics,
)

__all__ = [
    "ConfidenceStop",
    "ScheduledCampaignResult",
    "resolve_chunk_size",
    "run_adaptive",
]


@lru_cache(maxsize=None)
def _normal_quantile(confidence: float) -> float:
    """Two-sided normal quantile for *confidence*, computed once.

    The stopping rule evaluates at every chunk boundary; without the
    cache each evaluation re-imported ``scipy.stats`` and re-ran
    ``norm.ppf`` for the same handful of confidence levels.
    """
    from scipy.stats import norm

    return float(norm.ppf(0.5 * (1.0 + confidence)))


def resolve_chunk_size(stopping: "ConfidenceStop", chunk_size: Optional[int]) -> int:
    """Effective evaluation-boundary spacing for a scheduler run.

    Exposed so callers that key caches on the run configuration (the
    scenario runner) can compute the default without running anything.
    """
    if chunk_size is None:
        return max(stopping.min_trials // 2, 4)
    if chunk_size < 1:
        raise ValidationError("chunk_size must be >= 1")
    return int(chunk_size)


@dataclass(frozen=True)
class ConfidenceStop:
    """Stop when the CI half-width of a metric's mean is below tolerance.

    Attributes
    ----------
    metric : str
        Which trial metric the interval is computed over.
    tolerance : float
        Target half-width (meters, fractions — whatever the metric's
        unit is); with ``relative=True``, a fraction of ``|mean|``.
    confidence : float
        Two-sided confidence level of the interval (default 95%).
    relative : bool
        Interpret ``tolerance`` relative to the running ``|mean|``.
    min_trials : int
        Minimum finite samples before the rule may fire (guards against
        a lucky tight-looking pair of early trials).
    """

    metric: str = "mean_error_m"
    tolerance: float = 0.1
    confidence: float = 0.95
    relative: bool = False
    min_trials: int = 8

    def __post_init__(self):
        if not 0.0 < self.confidence < 1.0:
            raise ValidationError("confidence must be in (0, 1)")
        if self.tolerance <= 0.0:
            raise ValidationError("tolerance must be positive")
        if self.min_trials < 2:
            raise ValidationError("min_trials must be >= 2")

    def z_value(self) -> float:
        """Two-sided normal quantile for the confidence level (cached)."""
        return _normal_quantile(self.confidence)

    def half_width(self, values: np.ndarray) -> float:
        """CI half-width of the mean over the finite entries of *values*
        (inf when fewer than two finite samples exist)."""
        finite = values[np.isfinite(values)]
        if finite.size < 2:
            return float("inf")
        # ddof=1: the interval uses the sample std of an unknown mean.
        return self.z_value() * float(finite.std(ddof=1)) / math.sqrt(finite.size)

    def satisfied(self, values: np.ndarray) -> bool:
        """True when the interval over *values* is within tolerance."""
        finite = values[np.isfinite(values)]
        if finite.size < self.min_trials:
            return False
        hw = self.half_width(values)
        limit = self.tolerance
        if self.relative:
            mean = abs(float(finite.mean()))
            if mean == 0.0:
                # A zero mean with any spread never satisfies a relative
                # tolerance; with zero spread the half-width is 0 <= 0.
                limit = 0.0
            else:
                limit = self.tolerance * mean
        return hw <= limit

    def describe(self) -> dict:
        """Canonical description (participates in store keys)."""
        return {
            "rule": "confidence",
            "metric": self.metric,
            "tolerance": self.tolerance,
            "confidence": self.confidence,
            "relative": self.relative,
            "min_trials": self.min_trials,
        }


@dataclass(frozen=True)
class ScheduledCampaignResult(CampaignResult):
    """A campaign produced by the adaptive scheduler.

    Inherits all of :class:`CampaignResult` (records, aggregation) and
    adds the scheduling outcome: whether the stopping rule fired, the
    trial budget, and the half-width observed at each chunk boundary.
    """

    max_trials: int
    chunk_size: int
    converged: bool
    stop_reason: str
    half_width_trace: Tuple[float, ...]

    @property
    def trials_saved(self) -> int:
        """How many budgeted trials the early stop avoided."""
        return self.max_trials - self.n_trials


def run_adaptive(
    trial_fn: Callable[..., Mapping[str, float]],
    max_trials: int,
    *,
    stopping: ConfidenceStop,
    master_seed: int = 0,
    n_workers: int = 1,
    chunk_size: Optional[int] = None,
    trial_kwargs: Optional[Mapping[str, object]] = None,
    mp_context: Optional[str] = None,
) -> ScheduledCampaignResult:
    """Run up to *max_trials* seeded trials, stopping early on convergence.

    Parameters match :func:`repro.engine.campaign.run_monte_carlo` plus:

    stopping : ConfidenceStop
        The early-stopping criterion, evaluated at chunk boundaries.
    chunk_size : int, optional
        Trials dispatched between criterion evaluations; defaults to
        :func:`resolve_chunk_size` (a function of the stopping rule
        alone — deliberately *not* of ``n_workers``, so the committed
        prefix is identical for any worker count).  The chunk size is
        part of the determinism contract: a different value may legally
        commit a different prefix length.
    """
    if max_trials < 1:
        raise ValidationError("max_trials must be >= 1")
    if n_workers < 1:
        raise ValidationError("n_workers must be >= 1")
    if not isinstance(stopping, ConfidenceStop):
        raise ValidationError("stopping must be a ConfidenceStop")
    chunk_size = resolve_chunk_size(stopping, chunk_size)

    kwargs = dict(trial_kwargs or {})
    children = np.random.SeedSequence(master_seed).spawn(max_trials)
    payloads = [(trial_fn, i, children[i], kwargs) for i in range(max_trials)]

    records: List[TrialRecord] = []
    half_widths: List[float] = []
    converged = False

    rec = telemetry.current()
    traced = rec.active

    def committed_metric() -> np.ndarray:
        return np.asarray(
            [r.metrics.get(stopping.metric, float("nan")) for r in records],
            dtype=float,
        )

    def check_boundary() -> bool:
        values = committed_metric()
        half_widths.append(stopping.half_width(values))
        ok = stopping.satisfied(values)
        rec.event(
            "scheduler.boundary",
            chunk=len(half_widths),
            committed=len(records),
            half_width=half_widths[-1],
            satisfied=bool(ok),
        )
        return ok

    def run_traced_trial(payload) -> TrialRecord:
        record, data = _execute_trial_traced(payload)
        rec.merge_worker(data, under=chunk_under)
        rec.observe("engine.campaign.trial_wall_s", data["busy_s"])
        return record

    wall_start = time.perf_counter()
    with rec.span(
        "campaign",
        mode="adaptive",
        max_trials=int(max_trials),
        chunk_size=int(chunk_size),
        n_workers=int(n_workers),
    ):
        # Worker solve spans re-root under an explicit "chunk" segment in
        # both execution paths, so the trace's span tree is identical for
        # any worker count (the telemetry face of the prefix property).
        chunk_under = f"{rec.current_path()}/chunk" if traced else None
        if n_workers == 1:
            for start in range(0, max_trials, chunk_size):
                wall0, cpu0 = time.perf_counter(), time.process_time()
                for payload in payloads[start : start + chunk_size]:
                    records.append(
                        run_traced_trial(payload) if traced
                        else _execute_trial(payload)
                    )
                if traced:
                    rec.add_span(
                        "chunk",
                        time.perf_counter() - wall0,
                        time.process_time() - cpu0,
                        index=len(half_widths),
                        committed=len(records),
                    )
                if check_boundary():
                    converged = True
                    break
        else:
            if mp_context is None:
                methods = multiprocessing.get_all_start_methods()
                mp_context = "fork" if "fork" in methods else "spawn"
            ctx = multiprocessing.get_context(mp_context)
            with ctx.Pool(processes=n_workers) as pool:
                # imap keeps the pool saturated ahead of the consumer while
                # results are committed strictly in trial order; leaving the
                # context manager terminates any speculative trials past the
                # stopping point.
                mapper = _execute_trial_traced if traced else _execute_trial
                wall0, cpu0 = time.perf_counter(), time.process_time()
                for item in pool.imap(mapper, payloads, chunksize=1):
                    if traced:
                        record, data = item
                        rec.merge_worker(data, under=chunk_under)
                        rec.observe(
                            "engine.campaign.trial_wall_s", data["busy_s"]
                        )
                        records.append(record)
                    else:
                        records.append(item)
                    if len(records) % chunk_size == 0 or len(records) == max_trials:
                        if traced:
                            rec.add_span(
                                "chunk",
                                time.perf_counter() - wall0,
                                time.process_time() - cpu0,
                                index=len(half_widths),
                                committed=len(records),
                            )
                            wall0, cpu0 = time.perf_counter(), time.process_time()
                        if check_boundary():
                            converged = True
                            break

    if converged:
        reason = (
            f"{stopping.metric} CI half-width {half_widths[-1]:.4g} within "
            f"tolerance after {len(records)}/{max_trials} trials"
        )
    else:
        reason = f"trial budget exhausted ({max_trials} trials)"
    if traced:
        _record_campaign_metrics(rec, len(records), n_workers, wall_start)
        rec.count("scheduler.boundaries", len(half_widths))
        rec.count("scheduler.trials_committed", len(records))
        rec.count("scheduler.trials_saved", max_trials - len(records))
        rec.event(
            "scheduler.stop",
            converged=converged,
            reason=reason,
            committed=len(records),
            max_trials=int(max_trials),
        )
    return ScheduledCampaignResult(
        master_seed=int(master_seed),
        records=tuple(records),
        max_trials=int(max_trials),
        chunk_size=int(chunk_size),
        converged=converged,
        stop_reason=reason,
        half_width_trace=tuple(half_widths),
    )
