"""Stacked execution of heterogeneous local-map LSS problems.

The distributed localization pipeline (paper Section 4.3) runs one
small LSS minimization per node — its one-hop neighborhood in local
relative coordinates — and then stitches the resulting local maps with
rigid transforms.  The scalar reference path
(:func:`repro.core.distributed.build_local_maps` with
``solver="scalar"``) solves those neighborhoods one at a time; this
module is the batched twin: every local map of a refinement round is
padded into the ``(n_problems, max_nodes, 2)`` masked stacks of
:func:`repro.engine.batch.batch_lss_descend_padded` and all problems
advance through each perturbation-restart round in one vectorized
descent loop.

Semantics per problem mirror :func:`repro.core.lss.lss_localize` with
the ``"gd"`` backend: multiplicative step adaptation with heavy-ball
momentum, Gaussian perturbation restarts from the best configuration so
far, and the paper's soft minimum-spacing constraint over unmeasured
pairs.  Randomness is consumed from the supplied generator in
*problem-major* order (problem 0's initialization and all of its
restart perturbations are drawn before problem 1's), the same order the
scalar loop consumes it, so a batched run is deterministic given the
generator state.  Because the scalar path interleaves each map's
residual-trim refit draws with the next map's fit draws while the
batched path phases them (all fits, then all refits), the two paths see
different perturbation noise and agree to solver tolerance rather than
bit-for-bit; ``tests/test_distributed.py`` pins that agreement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .. import telemetry
from .._validation import ensure_rng
from ..errors import ValidationError
from .batch import batch_lss_descend_padded, batch_lss_error_padded

__all__ = ["LocalLssProblem", "LocalLssSolution", "solve_local_lss_stack"]


@dataclass(frozen=True)
class LocalLssProblem:
    """One local-map LSS problem in local node indices.

    Attributes
    ----------
    n_nodes : int
        Number of nodes in this neighborhood (local ids ``0..n-1``).
    edges : EdgeList
        Range measurements between local ids.
    initial : ndarray of shape (n_nodes, 2), optional
        Starting configuration (e.g. an MDS-MAP embedding); a random
        uniform draw is used when omitted.
    """

    n_nodes: int
    edges: "object"
    initial: Optional[np.ndarray] = None


@dataclass
class LocalLssSolution:
    """Solution of one stacked local-map problem.

    ``positions`` is the best configuration found (local relative
    coordinates, ``(n_nodes, 2)``); ``error`` the full objective
    including constraint terms; ``stress`` the measurement-only term;
    ``converged`` whether the final restart round hit its tolerance.
    """

    positions: np.ndarray
    error: float
    stress: float
    converged: bool


def solve_local_lss_stack(
    problems: Sequence[LocalLssProblem],
    *,
    config=None,
    rng=None,
    backend=None,
) -> List[LocalLssSolution]:
    """Solve a batch of variable-size LSS problems in lockstep.

    Each problem keeps its own node count, edge list, soft-constraint
    set, and adaptive step-size trajectory; the batch is padded to the
    largest neighborhood with zero-weight edge slots and masked
    constraint slots (exact-zero contributions, see
    :mod:`repro.engine.batch`).  All problems advance through
    ``config.restarts`` perturbation rounds together; per round the
    whole stack runs one :func:`batch_lss_descend_padded` call.

    *backend* selects the array namespace for the stacked descent
    (name, :class:`~repro.engine.backend.ArrayBackend`, or ``None`` for
    the process default); RNG consumption, padding, and solution
    selection stay host-side and backend-independent.

    Returns one :class:`LocalLssSolution` per problem, in order.
    """
    from ..core.lss import LssConfig, _constraint_pairs

    config = config if config is not None else LssConfig()
    if config.backend not in ("gd", "gd-scalar"):
        raise ValidationError(
            "solve_local_lss_stack supports only gradient-descent backends; "
            f"got {config.backend!r}"
        )
    rng = ensure_rng(rng)
    n_problems = len(problems)
    if n_problems == 0:
        return []

    sizes = [int(p.n_nodes) for p in problems]
    for k, problem in enumerate(problems):
        if len(problem.edges) == 0:
            raise ValidationError(f"problem {k} has no measurements")
        if np.any(problem.edges.pairs < 0) or np.any(problem.edges.pairs >= sizes[k]):
            raise ValidationError(f"problem {k} has edge indices outside [0, n_nodes)")

    constraints: List[Optional[np.ndarray]] = [None] * n_problems
    if config.min_spacing_m is not None:
        constraints = [
            _constraint_pairs(sizes[k], problems[k].edges.pairs)
            for k in range(n_problems)
        ]

    # Problem-major RNG consumption (see module docstring): draw each
    # problem's initialization and restart perturbations before moving
    # to the next problem's.
    initials: List[np.ndarray] = []
    perturbations: List[List[np.ndarray]] = []
    for k, problem in enumerate(problems):
        if problem.initial is not None:
            init = np.asarray(problem.initial, dtype=float)
            if init.shape != (sizes[k], 2):
                raise ValidationError(
                    f"problem {k} initial must have shape ({sizes[k]}, 2); "
                    f"got {init.shape}"
                )
            init = init.copy()
        else:
            span = config.init_span_m
            if span is None:
                span = max(
                    1.0,
                    float(np.median(problem.edges.distances)) * math.sqrt(sizes[k]),
                )
            init = rng.uniform(0.0, span, size=(sizes[k], 2))
        initials.append(init)
        perturbations.append(
            [
                rng.normal(0.0, config.perturbation_m, size=(sizes[k], 2))
                for _ in range(config.restarts - 1)
            ]
        )

    # Pad the stack: zero-weight edge slots and masked constraint slots
    # contribute exact zeros, so each padded problem is numerically the
    # unpadded one.
    max_nodes = max(sizes)
    max_edges = max(len(p.edges) for p in problems)
    pairs = np.zeros((n_problems, max_edges, 2), dtype=np.int64)
    dists = np.zeros((n_problems, max_edges))
    weights = np.zeros((n_problems, max_edges))
    for k, problem in enumerate(problems):
        n_edges = len(problem.edges)
        pairs[k, :n_edges] = problem.edges.pairs
        dists[k, :n_edges] = problem.edges.distances
        weights[k, :n_edges] = problem.edges.weights

    constraint_pairs = None
    constraint_valid = None
    if config.min_spacing_m is not None:
        max_constraints = max(c.shape[0] for c in constraints)
        if max_constraints > 0:
            constraint_pairs = np.zeros(
                (n_problems, max_constraints, 2), dtype=np.int64
            )
            constraint_valid = np.zeros((n_problems, max_constraints), dtype=bool)
            for k, c in enumerate(constraints):
                constraint_pairs[k, : c.shape[0]] = c
                constraint_valid[k, : c.shape[0]] = True

    kwargs = dict(
        constraint_pairs=constraint_pairs,
        constraint_valid=constraint_valid,
        min_spacing_m=config.min_spacing_m,
        constraint_weight=config.constraint_weight,
    )

    best = np.zeros((n_problems, max_nodes, 2))
    for k, init in enumerate(initials):
        best[k, : sizes[k]] = init
    best_error = batch_lss_error_padded(
        best, pairs, dists, weights, backend=backend, **kwargs
    )
    converged = np.zeros(n_problems, dtype=bool)
    for round_index in range(config.restarts):
        if round_index == 0:
            seed_pts = best.copy()
        else:
            seed_pts = best.copy()
            for k in range(n_problems):
                seed_pts[k, : sizes[k]] += perturbations[k][round_index - 1]
        out_pts, out_error, converged = batch_lss_descend_padded(
            seed_pts,
            pairs,
            dists,
            weights,
            step_size=config.step_size,
            max_epochs=config.max_epochs,
            tolerance=config.tolerance,
            backend=backend,
            **kwargs,
        )
        better = out_error < best_error
        best = np.where(better[:, None, None], out_pts, best)
        best_error = np.where(better, out_error, best_error)

    telemetry.count("engine.localmaps.stacks", 1)
    telemetry.count("engine.localmaps.problems", n_problems)
    telemetry.count("engine.localmaps.rounds", config.restarts)
    stress = batch_lss_error_padded(best, pairs, dists, weights, backend=backend)
    return [
        LocalLssSolution(
            positions=best[k, : sizes[k]].copy(),
            error=float(best_error[k]),
            stress=float(stress[k]),
            converged=bool(converged[k]),
        )
        for k in range(n_problems)
    ]
