"""Setuptools shim for legacy (pre-PEP 517) editable installs.

The offline environment's setuptools lacks the ``bdist_wheel`` command,
so ``pip install -e . --no-build-isolation --no-use-pep517`` goes
through this file.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.7"],
)
