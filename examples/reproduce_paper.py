"""Regenerate every table and figure of the paper in one run.

Executes all 26 experiment drivers (19 figures, 3 quantitative in-text
claims, 4 extension claims) and prints the paper-vs-measured comparison
with the qualitative shape checks.  This is the same code the benchmark
suite runs; expect a minute or so of compute.

Run:  python examples/reproduce_paper.py [seed]
      python examples/reproduce_paper.py --markdown > EXPERIMENTS.md
"""

import sys
import time

from repro.experiments import (
    DEFAULT_SEED,
    render_markdown,
    render_text,
    run_all,
    summary_counts,
)

PREAMBLE = [
    "Every figure and quantitative claim of *Resilient Localization for",
    "Sensor Networks in Outdoor Environments* (Kwon et al., ICDCS 2005),",
    "reproduced by this library's experiment drivers (`repro.experiments`).",
    "`figN` ids map to the paper's figures; `text-*` to quantitative in-text",
    "claims; `ext-*` to claims the paper makes in passing that this library",
    "additionally verifies (software tone detector, protocol message cost,",
    "scaling motivation).",
    "",
    "Absolute numbers are not expected to match — the substrate is a",
    "calibrated simulation, not the authors' MICA2 field testbed — but every",
    "**shape check** (who wins, by what factor, where the transitions fall)",
    "must hold; the test suite (`tests/test_experiments.py`) and the",
    "benchmark suite assert them.",
    "",
    "Regenerate this table with `python examples/reproduce_paper.py --markdown`.",
]


def main():
    args = [a for a in sys.argv[1:]]
    markdown = "--markdown" in args
    seeds = [a for a in args if not a.startswith("--")]
    seed = int(seeds[0]) if seeds else DEFAULT_SEED

    if not markdown:
        print(f"running all experiments with seed {seed} ...\n", file=sys.stderr)
    start = time.time()
    results = run_all(seed)
    elapsed = time.time() - start

    if markdown:
        print(render_markdown(results, preamble=PREAMBLE), end="")
    else:
        print(render_text(results))
        print(f"\ntotal runtime: {elapsed:.0f} s")

    counts = summary_counts(results)
    if counts["experiments_passed"] < counts["experiments"]:
        sys.exit(1)


if __name__ == "__main__":
    main()
