"""Quickstart: localize a sensor-network deployment in ~20 lines.

Builds the paper's 47-node offset-grid deployment, generates noisy range
measurements for every pair within acoustic range (the paper's
N(0, 0.33 m) model), runs centralized least-squares-scaling localization
with the minimum-spacing soft constraint, and reports the error.

Run:  python examples/quickstart.py
"""

from repro import core, deploy, ranging

def main():
    # 1. The deployment: the paper's 7x7 offset grid (47 live nodes).
    positions = deploy.paper_grid(47)
    print(f"deployed {len(positions)} nodes over "
          f"{positions[:, 0].max():.0f} x {positions[:, 1].max():.0f} m")

    # 2. Range measurements: truth + N(0, 0.33 m) for pairs within the
    #    ranging service's 22 m maximum range.
    ranges = ranging.gaussian_ranges(
        positions, max_range_m=22.0, sigma_m=0.33, rng=7
    )
    print(f"measured {len(ranges.undirected_pairs)} node pairs")

    # 3. Localize -- no anchors needed.  The 9 m minimum node spacing
    #    becomes a soft constraint that keeps the configuration from
    #    folding (the paper's key trick).
    result = core.lss_localize(
        ranges,
        len(positions),
        config=core.LssConfig(min_spacing_m=9.0),
        rng=7,
    )

    # 4. Evaluate against ground truth (rigid best-fit alignment first,
    #    since anchor-free coordinates are relative).
    report = core.evaluate_localization(result.positions, positions, align=True)
    print(f"localized {report.n_localized}/{report.n_total} nodes")
    print(f"average error: {report.average_error:.2f} m "
          f"(median {report.median_error:.2f} m, max {report.max_error:.2f} m)")


if __name__ == "__main__":
    main()
