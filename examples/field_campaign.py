"""A complete simulated field campaign, end to end.

Walks through the full pipeline the paper ran on its grassy-field site:

1. calibrate the acoustic ranging service for the environment,
2. run a multi-round ranging campaign over the 47-node offset grid
   (every chirp detection goes through the Figure 3 algorithm on
   simulated tone-detector buffers),
3. filter the raw measurements (median + bidirectional + triangle
   consistency, confidence weights),
4. localize three ways -- anchored multilateration, centralized LSS with
   the min-spacing constraint, LSS without the constraint -- and compare.

Run:  python examples/field_campaign.py
"""

import numpy as np

from repro import core, deploy, ranging
from repro.acoustics import get_environment
from repro.ranging.filtering import confidence_weighted_edges


def describe_errors(label, errors):
    errors = np.asarray(errors)
    within = (np.abs(errors) < 0.3).mean()
    print(f"  {label}: {errors.size} measurements, "
          f"{within:.0%} within +/-30 cm, worst {np.abs(errors).max():.1f} m")


def main():
    rng_seed = 2005

    # ------------------------------------------------------------------
    # 1. Environment + service calibration (Section 3.6).
    # ------------------------------------------------------------------
    environment = get_environment("grass")
    service = ranging.RangingService(environment=environment).calibrate(rng=rng_seed)
    print(f"calibrated ranging service for '{environment.name}': "
          f"constant offset {service.tdoa.calibration_offset_m * 100:.0f} cm")

    # ------------------------------------------------------------------
    # 2. The campaign: 3 rounds over the offset grid.
    # ------------------------------------------------------------------
    positions = deploy.paper_grid(47)
    raw = ranging.run_campaign(positions, service, rounds=3, rng=rng_seed + 1)
    print(f"\ncampaign: {len(raw)} directed measurements over "
          f"{len(raw.undirected_pairs)} pairs")
    describe_errors("raw", raw.signed_errors())

    # ------------------------------------------------------------------
    # 3. Filtering (Section 3.5).
    # ------------------------------------------------------------------
    filtered = ranging.triangle_filter(raw)
    edges = confidence_weighted_edges(filtered)
    print(f"\nafter consistency checks: {len(edges)} weighted pairs "
          f"(mean weight {edges.weights.mean():.2f})")

    # ------------------------------------------------------------------
    # 4a. Anchored multilateration (Section 4.1).
    # ------------------------------------------------------------------
    n = len(positions)
    anchor_idx = deploy.random_anchors(n, 13, rng=rng_seed)
    anchor_positions = {int(i): positions[i] for i in anchor_idx}
    multilat = core.localize_network(edges, anchor_positions, n)
    non_anchor = ~multilat.is_anchor
    localized = multilat.localized & non_anchor
    print(f"\nmultilateration (13 anchors): localized "
          f"{localized.sum()}/{non_anchor.sum()} non-anchors "
          f"(avg anchors/node {multilat.average_anchors_per_node:.2f})")
    if localized.sum():
        rep = core.evaluate_localization(
            multilat.positions[localized], positions[localized]
        )
        print(f"  error for the localized few: {rep.average_error:.2f} m")

    # ------------------------------------------------------------------
    # 4b. Centralized LSS with the soft constraint (Section 4.2).
    # ------------------------------------------------------------------
    constrained = core.lss_localize_robust(
        edges, n, config=core.LssConfig(min_spacing_m=9.14), rng=rng_seed
    )
    rep_c = core.evaluate_localization(constrained.positions, positions, align=True)
    print(f"\nLSS with min-spacing constraint (0 anchors): "
          f"all {rep_c.n_localized} nodes, avg error {rep_c.average_error:.2f} m")

    # ------------------------------------------------------------------
    # 4c. The ablation: LSS without the constraint (Figure 19).
    # ------------------------------------------------------------------
    unconstrained = core.lss_localize_robust(
        edges, n, config=core.LssConfig(min_spacing_m=None), rng=rng_seed
    )
    rep_u = core.evaluate_localization(unconstrained.positions, positions, align=True)
    print(f"LSS without the constraint: avg error {rep_u.average_error:.2f} m "
          f"({rep_u.average_error / max(rep_c.average_error, 1e-9):.0f}x worse)")

    print("\nconclusion: multilateration starves on sparse real data; "
          "constrained LSS localizes everyone.")


if __name__ == "__main__":
    main()
