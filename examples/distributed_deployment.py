"""Distributed localization for large-scale deployments (Section 4.3).

The centralized algorithm needs every measurement at one node; the
distributed variant runs LSS per neighborhood, stitches the local
coordinate systems with rigid transforms estimated from shared
neighbors, and floods the root's frame through the network.

This example reproduces the paper's finding end-to-end:

* sparse field measurements -> bad pairwise transforms whose errors are
  amplified down the alignment tree (Figure 24),
* add synthetic ranges for unmeasured pairs -> sub-meter accuracy
  (Figure 25),
* the "best-tree" extension (prefer low-residual transforms) as a
  mitigation the paper lists as future work.

Run:  python examples/distributed_deployment.py
"""

import numpy as np

from repro import core, deploy, ranging
from repro.acoustics import get_environment
from repro.ranging.filtering import confidence_weighted_edges


def evaluate(result, positions, label):
    report = core.evaluate_localization(
        result.positions, positions, localized_mask=result.localized, align=True
    )
    print(f"  {label}: {report.n_localized}/{report.n_total} localized, "
          f"avg error {report.average_error:.2f} m")
    return report


def main():
    seed = 2005
    positions = deploy.paper_grid(47)
    n = len(positions)

    # Field measurements (sparse, noisy).
    service = ranging.RangingService(environment=get_environment("grass")).calibrate(rng=seed)
    raw = ranging.run_campaign(positions, service, rounds=3, rng=seed + 1)
    edges = confidence_weighted_edges(ranging.triangle_filter(raw))
    print(f"sparse field data: {len(edges)} measured pairs for {n} nodes")

    # The paper's root node sits near (27, 36).
    root = int(np.argmin(np.hypot(positions[:, 0] - 27, positions[:, 1] - 36)))
    config = core.DistributedConfig(min_spacing_m=9.14)

    # ------------------------------------------------------------------
    # Step-by-step: local maps and transforms.
    # ------------------------------------------------------------------
    maps = core.build_local_maps(edges, n, config=config, rng=seed)
    transforms = core.build_transforms(maps, config=config)
    rmses = np.array([t.rmse for t in transforms.values()])
    print(f"step 1: {len(maps)} local maps "
          f"(median neighborhood size "
          f"{int(np.median([len(m.members) for m in maps.values()]))})")
    print(f"step 2: {len(transforms) // 2} pairwise transforms, "
          f"median residual {np.median(rmses):.2f} m, worst {rmses.max():.1f} m")

    # ------------------------------------------------------------------
    # Step 3: alignment -- sparse data (Figure 24).
    # ------------------------------------------------------------------
    print("step 3: alignment flood from root", root)
    sparse = core.distributed_localize(
        edges, n, root, config=config, rng=seed, local_maps=maps
    )
    evaluate(sparse, positions, "sparse measurements (fig 24)")

    # ------------------------------------------------------------------
    # Extended measurements (Figure 25).
    # ------------------------------------------------------------------
    extended_edges = ranging.augment_with_gaussian_ranges(
        edges, positions, max_range_m=22.0, sigma_m=0.33, n_extra=370, rng=seed
    )
    extended = core.distributed_localize(
        extended_edges, n, root, config=config, rng=seed
    )
    evaluate(extended, positions, "with 370 synthetic ranges (fig 25)")

    # ------------------------------------------------------------------
    # Extension: quality-aware alignment tree.
    # ------------------------------------------------------------------
    best_cfg = core.DistributedConfig(min_spacing_m=9.14, tree="best")
    best = core.distributed_localize(edges, n, root, config=best_cfg, rng=seed)
    evaluate(best, positions, "sparse + min-residual tree (extension)")


if __name__ == "__main__":
    main()
