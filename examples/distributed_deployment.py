"""Distributed localization for large-scale deployments (Section 4.3).

The centralized algorithm needs every measurement at one node; the
distributed variant runs LSS per neighborhood, stitches the local
coordinate systems with rigid transforms estimated from shared
neighbors, and floods the root's frame through the network.  In the
simulator both heavy steps run through the engine's batched kernels by
default (``DistributedConfig(solver="batched")``): every local map of
the round descends in one stacked minimization and every pairwise
transform is fitted in one vectorized pass, with ``solver="scalar"``
keeping the per-problem reference path.

This example reproduces the paper's finding end-to-end:

* sparse field measurements -> bad pairwise transforms whose errors are
  amplified down the alignment tree (Figure 24),
* add synthetic ranges for unmeasured pairs -> sub-meter accuracy
  (Figure 25),
* the "best-tree" extension (prefer low-residual transforms) as a
  mitigation the paper lists as future work,

and finishes at the scenario front door: the same pipeline as a
registered Monte-Carlo workload (``grid-distributed-lss``) runnable by
id, cacheable in the result store, and schedulable adaptively.

Run:  python examples/distributed_deployment.py [--quick]
"""

import argparse

import numpy as np

from repro import core, deploy, ranging
from repro.acoustics import get_environment
from repro.ranging.filtering import confidence_weighted_edges
from repro.scenarios import get_scenario, run_scenario


def evaluate(result, positions, label):
    report = core.evaluate_localization(
        result.positions, positions, localized_mask=result.localized, align=True
    )
    print(f"  {label}: {report.n_localized}/{report.n_total} localized, "
          f"avg error {report.average_error:.2f} m")
    return report


def main(quick: bool = False):
    seed = 2005
    rounds = 1 if quick else 3
    n_extra = 150 if quick else 370
    positions = deploy.paper_grid(47)
    n = len(positions)

    # Field measurements (sparse, noisy).
    service = ranging.RangingService(environment=get_environment("grass")).calibrate(rng=seed)
    raw = ranging.run_campaign(positions, service, rounds=rounds, rng=seed + 1)
    edges = confidence_weighted_edges(ranging.triangle_filter(raw))
    print(f"sparse field data: {len(edges)} measured pairs for {n} nodes")

    # The paper's root node sits near (27, 36).
    root = int(np.argmin(np.hypot(positions[:, 0] - 27, positions[:, 1] - 36)))
    config = core.DistributedConfig(min_spacing_m=9.14)

    # ------------------------------------------------------------------
    # Step-by-step: local maps and transforms, through the batched
    # engine kernels (config.solver defaults to "batched").
    # ------------------------------------------------------------------
    maps = core.build_local_maps(edges, n, config=config, rng=seed)
    transforms = core.build_transforms(maps, config=config)
    rmses = np.array([t.rmse for t in transforms.values()])
    print(f"step 1: {len(maps)} local maps solved in one stacked descent "
          f"(median neighborhood size "
          f"{int(np.median([len(m.members) for m in maps.values()]))})")
    print(f"step 2: {len(transforms) // 2} pairwise transforms in one batched fit, "
          f"median residual {np.median(rmses):.2f} m, worst {rmses.max():.1f} m")

    # ------------------------------------------------------------------
    # Step 3: alignment -- sparse data (Figure 24).
    # ------------------------------------------------------------------
    print("step 3: alignment flood from root", root)
    sparse = core.distributed_localize(
        edges, n, root, config=config, rng=seed, local_maps=maps
    )
    evaluate(sparse, positions, "sparse measurements (fig 24)")

    # ------------------------------------------------------------------
    # Extended measurements (Figure 25).
    # ------------------------------------------------------------------
    extended_edges = ranging.augment_with_gaussian_ranges(
        edges, positions, max_range_m=22.0, sigma_m=0.33, n_extra=n_extra, rng=seed
    )
    extended = core.distributed_localize(
        extended_edges, n, root, config=config, rng=seed
    )
    evaluate(extended, positions, f"with {n_extra} synthetic ranges (fig 25)")

    # ------------------------------------------------------------------
    # Extension: quality-aware alignment tree.
    # ------------------------------------------------------------------
    best_cfg = core.DistributedConfig(min_spacing_m=9.14, tree="best")
    best = core.distributed_localize(edges, n, root, config=best_cfg, rng=seed)
    evaluate(best, positions, "sparse + min-residual tree (extension)")

    # ------------------------------------------------------------------
    # The scenario front door: the same pipeline as a registered
    # Monte-Carlo workload (store-backed and scheduler-compatible; see
    # `python -m repro run grid-distributed-lss`).
    # ------------------------------------------------------------------
    spec = get_scenario("grid-distributed-lss")
    n_trials = 2 if quick else 4
    campaign = run_scenario(spec, master_seed=seed, n_trials=n_trials, store=None)
    stats = campaign.aggregate()["mean_error_m"]
    print(f"scenario {spec.scenario_id} [{spec.spec_hash()[:12]}]: "
          f"{n_trials} trials, campaign mean error "
          f"{stats['mean']:.2f} m (min {stats['min']:.2f}, max {stats['max']:.2f})")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller campaign (smoke-test mode: fewer chirp rounds, "
        "fewer synthetic ranges, fewer scenario trials)",
    )
    main(quick=parser.parse_args().quick)
