"""Inside the acoustic ranging service (Section 3).

Shows the raw material the localization layer never sees: simulated
binary tone-detector buffers, the Figure 3 accumulate-and-threshold
detection, the effect of the consistency checks, the sliding-DFT
software tone detector (Figures 9-10), and detection-range curves per
environment.

Run:  python examples/ranging_deep_dive.py
"""

import numpy as np

from repro import ranging
from repro.acoustics import get_environment, synthesize_waveform
from repro.ranging import (
    RangingService,
    bidirectional_filter,
    detect_signal,
    tone_detect_waveform,
)
from repro.ranging.link import LinkRealization


def ascii_sparkline(values, width=64):
    """Tiny ASCII rendering of a count buffer."""
    blocks = " .:-=+*#%@"
    values = np.asarray(values, dtype=float)
    chunks = np.array_split(values, width)
    out = []
    for chunk in chunks:
        level = int(min(chunk.max() / 10.0, 0.99) * len(blocks))
        out.append(blocks[level])
    return "".join(out)


def main():
    seed = 2005
    env = get_environment("grass")
    service = RangingService(environment=env).calibrate(rng=seed)
    rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # 1. One measurement, sample by sample.
    # ------------------------------------------------------------------
    true_distance = 12.0
    link = LinkRealization(link_gain_db=0.0)
    counts = service.link_simulator.simulate_counts(
        true_distance, link=link, rng=rng
    )
    print(f"accumulated detector buffer for a {true_distance:.0f} m link "
          f"({service.pattern.num_chirps} chirps):")
    print(" ", ascii_sparkline(counts))
    index = detect_signal(counts, k=6, m=32, threshold=2)
    estimate = service.tdoa.distance_from_index(index)
    print(f"detection at sample {index} -> {estimate:.2f} m "
          f"(error {100 * (estimate - true_distance):+.0f} cm)")

    # ------------------------------------------------------------------
    # 2. Repeated measurements + the bidirectional check.
    # ------------------------------------------------------------------
    print("\nten repeated measurements of the same link:")
    estimates = []
    for _ in range(10):
        est = service.measure(true_distance, link=link, rng=rng)
        estimates.append(est)
    print(" ", ["%.2f" % e if e is not None else "miss" for e in estimates])
    print(f"  median: {np.median([e for e in estimates if e is not None]):.2f} m")

    # ------------------------------------------------------------------
    # 3. The software tone detector on a noisy waveform (Figure 10).
    # ------------------------------------------------------------------
    noisy = synthesize_waveform(
        num_chirps=4, frequency_hz=4000.0, noise_std=300.0, rng=seed
    )
    onsets, _ = tone_detect_waveform(noisy)
    print(f"\nsliding-DFT detector on a noisy 4-chirp waveform: "
          f"{len(onsets)} chirps found at samples {list(onsets)}")

    # ------------------------------------------------------------------
    # 4. Detection-probability curves (Section 3.6.2).
    # ------------------------------------------------------------------
    print("\ndetection probability vs distance (correct detections only):")
    print(f"  {'distance':>9} {'grass':>7} {'pavement':>9}")
    pavement = RangingService(
        environment=get_environment("pavement"),
        tdoa=ranging.TdoaConfig(max_range_m=55.0),
    ).calibrate(rng=seed)
    grass = RangingService(
        environment=env, tdoa=ranging.TdoaConfig(max_range_m=55.0)
    ).calibrate(rng=seed)
    for d in (5, 10, 15, 20, 25, 30, 40):
        pg = grass.detection_probability(float(d), attempts=25, within_m=3.0, rng=rng)
        pp = pavement.detection_probability(float(d), attempts=25, within_m=3.0, rng=rng)
        print(f"  {d:>7} m {pg:>7.0%} {pp:>9.0%}")


if __name__ == "__main__":
    main()
